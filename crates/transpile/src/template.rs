//! Compile-once/rebind-many circuit templates.
//!
//! Every noisy evaluation runs the full transpile pipeline — simplify at
//! the bound angles, route onto the device, expand to native gates, fuse
//! with the day's noise — even though consecutive evaluations differ only
//! in rotation angles (per sample) and channel strengths (per day). The
//! routed *structure* of the pipeline's output is not a function of the
//! raw angles but of their **identity pattern** alone: which
//! parameterised gates sit on an identity angle and are dropped before
//! routing. Everything finer — pulse counts, bound matrices — is
//! recomputed from the actual angles by the cheap expansion pass at bind
//! time.
//!
//! [`StructureKey`] captures exactly that pattern in one byte per
//! parameterised op, and [`CircuitTemplate`] caches the expensive
//! structure-determined half of the pipeline (simplify + route). Binding a
//! template at concrete angles ([`CircuitTemplate::bind`]) re-runs only
//! the cheap linear passes and is **bit-identical** to a from-scratch
//! compile whenever the keys match: two parameter vectors with equal keys
//! drop the same ops, so `simplified()` yields value-identical circuits,
//! routing is deterministic, and expansion differs only in the rotation
//! angles it was going to re-bind anyway (see the `template_props`
//! property tests).
//!
//! `qnn::executor` builds a per-executor program cache on top of this:
//! training loops and batch evaluation route+expand once per structure and
//! rebind angles per sample / noise strengths per day. Bind time is also
//! where the trajectory backends precompose runs of consecutive
//! same-support unitaries into single matrices
//! ([`crate::fuse::fuse_native_trajectory`]) — a value-level optimisation
//! that must happen after angles are bound, which is why it lives
//! downstream of the template rather than in the cached structure.

use crate::circuit::{angle_is_identity, Circuit};
use crate::expand::{expand, NativeCircuit};
use crate::route::{route, PhysicalCircuit};
use calibration::topology::Topology;

/// The identity-pattern signature of a circuit at a bound parameter
/// vector: one byte per parameterised op (kept / identity-dropped), in op
/// order.
///
/// Two parameter vectors with equal keys produce identical simplified
/// circuits and therefore identical routing; everything downstream of the
/// route — native-gate expansion, pulse counts, bound matrices — is
/// recomputed from the actual angles at bind time, so the key needs no
/// finer classification (a coarser key means strictly more cache hits).
///
/// # Examples
///
/// ```
/// use transpile::circuit::{Circuit, Param};
/// use transpile::template::structure_key;
/// use transpile::expand::ANGLE_TOL;
///
/// let mut c = Circuit::new(2);
/// c.ry(0, Param::Idx(0)).cry(0, 1, Param::Idx(1));
/// // Two generic-angle vectors share a structure…
/// assert_eq!(
///     structure_key(&c, &[0.4, 1.3], ANGLE_TOL),
///     structure_key(&c, &[2.2, -0.9], ANGLE_TOL),
/// );
/// // …but compressing a parameter to 0 changes it.
/// assert_ne!(
///     structure_key(&c, &[0.4, 1.3], ANGLE_TOL),
///     structure_key(&c, &[0.0, 1.3], ANGLE_TOL),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StructureKey(Box<[u8]>);

impl StructureKey {
    /// Number of parameterised ops the key classifies.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the circuit has no parameterised op.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw kept/dropped bytes, one per parameterised op in op order
    /// (`1` = kept, `0` = identity-dropped); used by `crate::verify`.
    pub(crate) fn bytes(&self) -> &[u8] {
        &self.0
    }
}

/// Computes the [`StructureKey`] of `circuit` at `theta`.
///
/// The classification mirrors the pipeline exactly: identity detection
/// via [`angle_is_identity`], the single rule `Circuit::simplified` and
/// `transpile::expand` share, so the key can never disagree with the
/// simplify pass about which ops survive to routing.
///
/// # Panics
///
/// Panics if `theta` is shorter than the circuit's parameter count.
pub fn structure_key(circuit: &Circuit, theta: &[f64], tol: f64) -> StructureKey {
    let mut key = Vec::with_capacity(circuit.len());
    for op in circuit.ops() {
        let Some(p) = op.param else { continue };
        let angle = p.resolve(theta);
        key.push(u8::from(!angle_is_identity(op.kind, angle, tol)));
    }
    StructureKey(key.into_boxed_slice())
}

/// The structure-determined half of a compiled circuit: the simplified,
/// routed [`PhysicalCircuit`] for one [`StructureKey`], ready to be
/// re-bound at any parameter vector with the same key.
///
/// # Examples
///
/// ```
/// use transpile::circuit::{Circuit, Param};
/// use transpile::template::CircuitTemplate;
/// use transpile::expand::ANGLE_TOL;
/// use calibration::topology::Topology;
///
/// let mut c = Circuit::new(2);
/// c.ry(0, Param::Idx(0)).cry(0, 1, Param::Idx(1));
/// let topo = Topology::ibm_belem();
/// let template = CircuitTemplate::compile(&c, &topo, &[0.4, 1.3], ANGLE_TOL);
/// // Rebinding at another same-structure vector skips simplify + route.
/// let native = template.bind(&[2.2, -0.9]);
/// assert_eq!(native.cx_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitTemplate {
    key: StructureKey,
    phys: PhysicalCircuit,
}

impl CircuitTemplate {
    /// Runs the structural half of the pipeline (simplify at `theta`, route
    /// onto `topology` with the identity initial layout) and records the
    /// structure key it is valid for.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is shorter than the circuit's parameter count or
    /// the device is smaller than the circuit.
    pub fn compile(circuit: &Circuit, topology: &Topology, theta: &[f64], tol: f64) -> Self {
        let key = structure_key(circuit, theta, tol);
        let simplified = circuit.simplified(theta, tol);
        let phys = route(&simplified, topology, None);
        let template = CircuitTemplate { key, phys };
        // Compile-boundary invariant check: every template leaving the
        // structural half of the pipeline is internally consistent and
        // on-device (debug/test builds only; release sweeps call
        // `crate::verify::verify_template` explicitly).
        debug_assert!(
            crate::verify::verify_template(&template, topology).is_ok(),
            "compile produced an invalid template: {}",
            crate::verify::verify_template(&template, topology).unwrap_err()
        );
        template
    }

    /// The structure key this template was compiled for.
    pub fn key(&self) -> &StructureKey {
        &self.key
    }

    /// The routed physical circuit (structure only; angles unbound).
    pub fn physical(&self) -> &PhysicalCircuit {
        &self.phys
    }

    /// Re-binds the template at a concrete parameter vector: native-gate
    /// expansion only, no simplify / route.
    ///
    /// Bit-identical to `expand(&route(&circuit.simplified(theta, tol),
    /// topology, None), theta)` whenever `structure_key(circuit, theta,
    /// tol)` equals [`CircuitTemplate::key`].
    ///
    /// # Panics
    ///
    /// Panics if `theta` is shorter than the circuit's parameter count.
    pub fn bind(&self, theta: &[f64]) -> NativeCircuit {
        expand(&self.phys, theta)
    }

    /// Re-binds the template at every parameter vector of a probe batch —
    /// the transpile half of the batched gradient engine in `qnn`: a
    /// parameter-shift or SPSA sweep routes once (this template) and pays
    /// only the linear expansion pass per probe.
    ///
    /// Every output element is exactly [`CircuitTemplate::bind`] of the
    /// corresponding vector. In debug/test builds the key-sharing
    /// precondition is asserted against `circuit`: each probe vector must
    /// have this template's [`StructureKey`] (shift probes almost always
    /// do; identity-crossing shifts change the key and must be compiled
    /// under their own template, which the executor's program cache
    /// handles).
    ///
    /// # Panics
    ///
    /// Panics if any vector is shorter than the circuit's parameter count.
    pub fn bind_batch(&self, circuit: &Circuit, thetas: &[&[f64]], tol: f64) -> Vec<NativeCircuit> {
        thetas
            .iter()
            .map(|theta| {
                debug_assert_eq!(
                    structure_key(circuit, theta, tol),
                    self.key,
                    "bind_batch probe does not share the template's structure key"
                );
                self.bind(theta)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Param;
    use crate::expand::ANGLE_TOL;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn ladder() -> Circuit {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.ry(q, Param::Idx(q));
        }
        for q in 0..3 {
            c.cry(q, q + 1, Param::Idx(4 + q));
        }
        c.cx(3, 0);
        c
    }

    #[test]
    fn key_ignores_unparameterised_ops_and_generic_angle_values() {
        let c = ladder();
        let a = structure_key(&c, &[0.3, 0.9, 1.4, 2.0, 0.7, 1.1, 2.8], ANGLE_TOL);
        let b = structure_key(&c, &[1.3, 1.9, 0.4, 1.0, 2.7, 0.1, 0.8], ANGLE_TOL);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn key_distinguishes_dropped_ops_only() {
        let c = ladder();
        let generic = structure_key(&c, &[0.3; 7], ANGLE_TOL);
        let dropped = structure_key(&c, &[0.0, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3], ANGLE_TOL);
        assert_ne!(generic, dropped);
        // Quarter turns and half turns keep the op, so they share the
        // generic structure (pulse costs are re-derived at bind time).
        let quarter = structure_key(&c, &[FRAC_PI_2, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3], ANGLE_TOL);
        assert_eq!(generic, quarter);
        let ctrl_pi = structure_key(&c, &[0.3, 0.3, 0.3, 0.3, PI, 0.3, 0.3], ANGLE_TOL);
        assert_eq!(generic, ctrl_pi);
        // Controlled rotations drop only at multiples of 4π.
        let tau = std::f64::consts::TAU;
        let ctrl_2pi = structure_key(&c, &[0.3, 0.3, 0.3, 0.3, tau, 0.3, 0.3], ANGLE_TOL);
        assert_eq!(generic, ctrl_2pi);
        let ctrl_4pi = structure_key(&c, &[0.3, 0.3, 0.3, 0.3, 2.0 * tau, 0.3, 0.3], ANGLE_TOL);
        assert_ne!(generic, ctrl_4pi);
    }

    #[test]
    fn key_wraps_angles_like_the_pipeline() {
        let mut c = Circuit::new(1);
        c.ry(0, Param::Idx(0));
        let tau = std::f64::consts::TAU;
        assert_eq!(
            structure_key(&c, &[0.0], ANGLE_TOL),
            structure_key(&c, &[-tau], ANGLE_TOL)
        );
        assert_ne!(
            structure_key(&c, &[0.0], ANGLE_TOL),
            structure_key(&c, &[FRAC_PI_2 + tau], ANGLE_TOL)
        );
    }

    #[test]
    fn bind_matches_from_scratch_pipeline_for_equal_keys() {
        let c = ladder();
        let topo = Topology::ibm_belem();
        let first = [0.3, 0.9, 1.4, 2.0, 0.7, 1.1, 2.8];
        let template = CircuitTemplate::compile(&c, &topo, &first, ANGLE_TOL);
        let second = [1.3, 1.9, 0.4, 1.0, 2.7, 0.1, 0.8];
        assert_eq!(*template.key(), structure_key(&c, &second, ANGLE_TOL));
        let rebound = template.bind(&second);
        let scratch = expand(
            &route(&c.simplified(&second, ANGLE_TOL), &topo, None),
            &second,
        );
        assert_eq!(rebound, scratch);
    }

    #[test]
    fn bind_batch_matches_per_probe_bind() {
        let c = ladder();
        let topo = Topology::ibm_belem();
        let base = [0.3, 0.9, 1.4, 2.0, 0.7, 1.1, 2.8];
        let template = CircuitTemplate::compile(&c, &topo, &base, ANGLE_TOL);
        // A parameter-shift sweep: ± π/2 on each coordinate, none crossing
        // an identity, so all probes share the template's key.
        let mut probes: Vec<Vec<f64>> = Vec::new();
        for i in 0..base.len() {
            for sign in [1.0, -1.0] {
                let mut t = base.to_vec();
                t[i] += sign * FRAC_PI_2;
                probes.push(t);
            }
        }
        let refs: Vec<&[f64]> = probes.iter().map(Vec::as_slice).collect();
        let batch = template.bind_batch(&c, &refs, ANGLE_TOL);
        assert_eq!(batch.len(), probes.len());
        for (native, theta) in batch.iter().zip(probes.iter()) {
            assert_eq!(*native, template.bind(theta));
        }
    }

    #[test]
    #[should_panic(expected = "structure key")]
    #[cfg(debug_assertions)]
    fn bind_batch_rejects_key_crossing_probe() {
        let c = ladder();
        let topo = Topology::ibm_belem();
        let base = [0.3, 0.9, 1.4, 2.0, 0.7, 1.1, 2.8];
        let template = CircuitTemplate::compile(&c, &topo, &base, ANGLE_TOL);
        // Zeroing a parameter drops its op: a different structure.
        let crossing = [0.0, 0.9, 1.4, 2.0, 0.7, 1.1, 2.8];
        let _ = template.bind_batch(&c, &[&crossing], ANGLE_TOL);
    }

    #[test]
    fn compressed_structure_gets_its_own_template() {
        let c = ladder();
        let topo = Topology::ibm_belem();
        let compressed = [0.0, PI, 0.3, FRAC_PI_2, 0.0, 1.7, 0.0];
        let template = CircuitTemplate::compile(&c, &topo, &compressed, ANGLE_TOL);
        let rebound = template.bind(&compressed);
        let scratch = expand(
            &route(&c.simplified(&compressed, ANGLE_TOL), &topo, None),
            &compressed,
        );
        assert_eq!(rebound, scratch);
        // The compressed structure is strictly shorter than the generic one.
        let generic = CircuitTemplate::compile(&c, &topo, &[0.3; 7], ANGLE_TOL);
        assert!(rebound.length() < generic.bind(&[0.3; 7]).length());
    }
}

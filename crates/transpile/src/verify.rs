//! Static verification of the transpile-side IR: logical circuits, routed
//! physical circuits, and compile-once/rebind-many templates.
//!
//! The companion of `quasim::verify` for the front half of the pipeline.
//! Where the fused-program verifier guards what the kernels execute —
//! including the bind-time precompose provenance of
//! [`crate::fuse::fuse_native_trajectory`] output — this
//! module guards what the compiler caches: a [`Circuit`] whose ops are
//! well-formed, a [`PhysicalCircuit`] whose layouts are injective and whose
//! two-qubit ops all sit on coupling edges, and — the check the rebind
//! path lives on — a [`CircuitTemplate`] that is *structurally equal* to
//! the bound instance it is about to produce ([`verify_bound`]): binding a
//! template at a parameter vector whose [`StructureKey`] differs from the
//! template's silently yields a circuit the from-scratch pipeline would
//! never build.
//!
//! All checks are static (no routing, no expansion, no simulation) and are
//! wired as `debug_assert!`s at [`CircuitTemplate::compile`] and the
//! executor's rebind boundary, plus standalone APIs for release-mode
//! sweeps.

use crate::circuit::{Circuit, Param};
use crate::route::PhysicalCircuit;
use crate::template::{structure_key, CircuitTemplate, StructureKey};
use calibration::topology::Topology;

/// A violated transpile-IR invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// An op's operand count disagrees with its gate kind's arity.
    OperandCount {
        /// Op index.
        op: usize,
    },
    /// An op references a qubit outside the register.
    QubitOutOfRange {
        /// Op index.
        op: usize,
        /// The out-of-range qubit.
        qubit: usize,
    },
    /// A two-qubit op names the same qubit twice.
    DuplicateOperands {
        /// Op index.
        op: usize,
    },
    /// Parameter presence disagrees with the gate kind (fixed gates carry
    /// no angle, parameterised gates must).
    ParamPresence {
        /// Op index.
        op: usize,
    },
    /// A trainable parameter index is outside the declared parameter count.
    ParamIndex {
        /// Op index.
        op: usize,
        /// The out-of-range index.
        index: usize,
    },
    /// A layout is not an injective embedding of the logical register into
    /// the physical one.
    LayoutNotInjective {
        /// Which layout (`"initial"` or `"final"`).
        which: &'static str,
    },
    /// A two-qubit op sits on a pair that is not a coupling edge.
    TopologyViolation,
    /// A structure key byte is neither 0 (dropped) nor 1 (kept).
    KeyByte {
        /// Position in the key.
        position: usize,
    },
    /// A template's kept-op count disagrees with the parameterised ops of
    /// its routed circuit.
    KeyKeptMismatch {
        /// Ops the key claims survive simplification.
        kept: usize,
        /// Parameterised ops actually present in the routed circuit.
        routed: usize,
    },
    /// A bound instance's structure key differs from its template's — the
    /// rebind would not be bit-identical to a from-scratch compile.
    KeyMismatch,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            VerifyError::OperandCount { op } => {
                write!(f, "op {op} operand count disagrees with its gate arity")
            }
            VerifyError::QubitOutOfRange { op, qubit } => {
                write!(f, "op {op} references out-of-range qubit {qubit}")
            }
            VerifyError::DuplicateOperands { op } => {
                write!(f, "op {op} names the same qubit twice")
            }
            VerifyError::ParamPresence { op } => {
                write!(f, "op {op} parameter presence disagrees with its gate kind")
            }
            VerifyError::ParamIndex { op, index } => {
                write!(f, "op {op} references out-of-range parameter {index}")
            }
            VerifyError::LayoutNotInjective { which } => {
                write!(f, "{which} layout is not an injective embedding")
            }
            VerifyError::TopologyViolation => {
                write!(f, "a two-qubit op sits on a non-coupled physical pair")
            }
            VerifyError::KeyByte { position } => {
                write!(f, "structure key byte {position} is neither 0 nor 1")
            }
            VerifyError::KeyKeptMismatch { kept, routed } => write!(
                f,
                "structure key keeps {kept} ops but the routed circuit has {routed} \
                 parameterised ops"
            ),
            VerifyError::KeyMismatch => write!(
                f,
                "bound instance's structure key differs from its template's"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks one op list against a register and parameter count (shared
/// between the logical and physical circuit verifiers; SWAPs inserted by
/// routing are ordinary two-qubit ops here).
fn verify_ops(
    ops: &[crate::circuit::Op],
    n_qubits: usize,
    n_params: usize,
) -> Result<(), VerifyError> {
    for (oi, op) in ops.iter().enumerate() {
        if op.qubits.len() != op.kind.arity() {
            return Err(VerifyError::OperandCount { op: oi });
        }
        for &q in &op.qubits {
            if q >= n_qubits {
                return Err(VerifyError::QubitOutOfRange { op: oi, qubit: q });
            }
        }
        if let [a, b] = op.qubits.as_slice() {
            if a == b {
                return Err(VerifyError::DuplicateOperands { op: oi });
            }
        }
        if op.param.is_some() != op.kind.is_parameterised() {
            return Err(VerifyError::ParamPresence { op: oi });
        }
        if let Some(Param::Idx(i)) = op.param {
            if i >= n_params {
                return Err(VerifyError::ParamIndex { op: oi, index: i });
            }
        }
    }
    Ok(())
}

/// Statically checks a logical circuit: operand arity, qubit bounds,
/// operand distinctness, parameter presence, and parameter index bounds.
///
/// [`Circuit::push`] asserts the same properties on construction; the
/// verifier re-derives them so externally deserialised or mutated circuits
/// get the same guarantee without a rebuild.
pub fn verify_circuit(circuit: &Circuit) -> Result<(), VerifyError> {
    verify_ops(circuit.ops(), circuit.n_qubits(), circuit.n_params())
}

/// Statically checks a routed physical circuit against its device: op
/// well-formedness on the physical register, injective initial/final
/// layouts, and every two-qubit op on a coupling edge.
pub fn verify_physical(phys: &PhysicalCircuit, topology: &Topology) -> Result<(), VerifyError> {
    verify_ops(phys.ops(), phys.n_physical(), phys.n_params())?;
    for (which, layout) in [
        ("initial", phys.initial_layout()),
        ("final", phys.final_layout()),
    ] {
        let mut seen = vec![false; phys.n_physical()];
        for &p in layout {
            if p >= seen.len() || seen[p] {
                return Err(VerifyError::LayoutNotInjective { which });
            }
            seen[p] = true;
        }
    }
    if !phys.respects_topology(topology) {
        return Err(VerifyError::TopologyViolation);
    }
    Ok(())
}

/// Statically checks a compiled template: a well-formed routed circuit on
/// `topology`, key bytes in `{0, 1}`, and the key's kept-op count equal to
/// the routed circuit's parameterised-op count (each kept op survives
/// simplification into exactly one routed op; dropped ops must not
/// reappear).
pub fn verify_template(template: &CircuitTemplate, topology: &Topology) -> Result<(), VerifyError> {
    verify_physical(template.physical(), topology)?;
    verify_key(template.key())?;
    let kept = template.key().bytes().iter().filter(|&&b| b == 1).count();
    let routed = template
        .physical()
        .ops()
        .iter()
        .filter(|op| op.param.is_some())
        .count();
    if kept != routed {
        return Err(VerifyError::KeyKeptMismatch { kept, routed });
    }
    Ok(())
}

/// Checks a structure key's bytes are the kept/dropped alphabet.
fn verify_key(key: &StructureKey) -> Result<(), VerifyError> {
    if let Some(position) = key.bytes().iter().position(|&b| b > 1) {
        return Err(VerifyError::KeyByte { position });
    }
    Ok(())
}

/// The rebind-path check: binding `template` at `theta` is structurally
/// equal to a from-scratch compile of `circuit` if and only if the keys
/// match. This is the bound-instance ≡ template equality the executor's
/// program cache relies on; `tol` is the identity-angle tolerance the
/// pipeline compiled with.
pub fn verify_bound(
    template: &CircuitTemplate,
    circuit: &Circuit,
    theta: &[f64],
    tol: f64,
) -> Result<(), VerifyError> {
    if structure_key(circuit, theta, tol) != *template.key() {
        return Err(VerifyError::KeyMismatch);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Param;
    use crate::expand::ANGLE_TOL;
    use crate::route::route;

    fn ladder() -> Circuit {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.ry(q, Param::Idx(q));
        }
        for q in 0..3 {
            c.cry(q, q + 1, Param::Idx(4 + q));
        }
        c.cx(3, 0);
        c
    }

    #[test]
    fn accepts_pipeline_circuits_and_templates() {
        let c = ladder();
        assert_eq!(verify_circuit(&c), Ok(()));
        let topo = Topology::ibm_belem();
        let theta = [0.3, 0.9, 1.4, 2.0, 0.7, 1.1, 2.8];
        let phys = route(&c.simplified(&theta, ANGLE_TOL), &topo, None);
        assert_eq!(verify_physical(&phys, &topo), Ok(()));
        let template = CircuitTemplate::compile(&c, &topo, &theta, ANGLE_TOL);
        assert_eq!(verify_template(&template, &topo), Ok(()));
        assert_eq!(verify_bound(&template, &c, &theta, ANGLE_TOL), Ok(()));
    }

    #[test]
    fn rejects_rebind_across_structures() {
        let c = ladder();
        let topo = Topology::ibm_belem();
        let generic = [0.3; 7];
        let template = CircuitTemplate::compile(&c, &topo, &generic, ANGLE_TOL);
        // Compressing a parameter to an identity angle changes the
        // structure: the template must not be re-bound at it.
        let compressed = [0.0, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3];
        assert_eq!(
            verify_bound(&template, &c, &compressed, ANGLE_TOL),
            Err(VerifyError::KeyMismatch)
        );
    }

    #[test]
    fn rejects_off_device_physical_circuits() {
        let c = ladder();
        // `cx(3, 0)` routes onto the ring's wrap-around edge, which a
        // 4-qubit line does not have.
        let ring = Topology::ring(4);
        let phys = route(&c, &ring, None);
        assert_eq!(verify_physical(&phys, &ring), Ok(()));
        assert_eq!(
            verify_physical(&phys, &Topology::line(4)),
            Err(VerifyError::TopologyViolation)
        );
    }
}

//! Property-based test of [`transpile::expand`]: native-gate expansion
//! must preserve the circuit *unitary*, not just measurement marginals.
//! For random circuits and random parameter bindings (generic angles mixed
//! with exact compression levels, where the expansion takes its special
//! cases), the state prepared by the expanded physical circuit must have
//! fidelity ≥ 1 − 1e−9 with the logical circuit's state after undoing the
//! routing permutation.

use calibration::topology::Topology;
use proptest::prelude::*;
use quasim::math::Complex64;
use quasim::statevector::StateVector;
use std::f64::consts::FRAC_PI_2;
use transpile::circuit::{Circuit, Param};
use transpile::expand::expand;
use transpile::route::route_identity;

#[derive(Debug, Clone, Copy)]
enum RawGate {
    Ry(usize),
    Rx(usize),
    Rz(usize),
    H(usize),
    Cx(usize, usize),
    Cry(usize, usize),
    Crx(usize, usize),
    Crz(usize, usize),
}

fn arb_raw_gate() -> impl Strategy<Value = RawGate> {
    (0usize..8, 0usize..64, 0usize..64).prop_map(|(k, a, b)| match k {
        0 => RawGate::Ry(a),
        1 => RawGate::Rx(a),
        2 => RawGate::Rz(a),
        3 => RawGate::H(a),
        4 => RawGate::Cx(a, b),
        5 => RawGate::Cry(a, b),
        6 => RawGate::Crx(a, b),
        _ => RawGate::Crz(a, b),
    })
}

/// Angles drawn from generic values *and* the exact quarter-turn levels,
/// so the pulse-count special cases (vanish at 0, single pulse at k·π/2)
/// are exercised alongside the generic two-pulse path.
fn arb_angle() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-7.0f64..7.0).boxed(),
        (0i32..8).prop_map(|k| k as f64 * FRAC_PI_2).boxed(),
        Just(0.0).boxed(),
    ]
}

fn build_circuit(n: usize, raw: &[RawGate]) -> Circuit {
    let mut c = Circuit::new(n);
    let mut next = 0usize;
    for g in raw {
        match *g {
            RawGate::Ry(q) => {
                c.ry(q % n, Param::Idx(next));
                next += 1;
            }
            RawGate::Rx(q) => {
                c.rx(q % n, Param::Idx(next));
                next += 1;
            }
            RawGate::Rz(q) => {
                c.rz(q % n, Param::Idx(next));
                next += 1;
            }
            RawGate::H(q) => {
                c.h(q % n);
            }
            RawGate::Cx(a, b) if a % n != b % n => {
                c.cx(a % n, b % n);
            }
            RawGate::Cry(a, b) if a % n != b % n => {
                c.cry(a % n, b % n, Param::Idx(next));
                next += 1;
            }
            RawGate::Crx(a, b) if a % n != b % n => {
                c.crx(a % n, b % n, Param::Idx(next));
                next += 1;
            }
            RawGate::Crz(a, b) if a % n != b % n => {
                c.crz(a % n, b % n, Param::Idx(next));
                next += 1;
            }
            _ => {}
        }
    }
    c
}

/// Embeds the logical state into the physical register according to the
/// routed circuit's final layout (`layout[logical] = physical`).
fn permute_to_physical(logical: &StateVector, layout: &[usize]) -> StateVector {
    let n = logical.n_qubits();
    assert_eq!(layout.len(), n, "layout must cover the register");
    let dim = 1usize << n;
    let mut amps = vec![Complex64::ZERO; dim];
    for (i, &a) in logical.amplitudes().iter().enumerate() {
        let mut j = 0usize;
        for (l, &p) in layout.iter().enumerate() {
            if (i >> l) & 1 == 1 {
                j |= 1 << p;
            }
        }
        amps[j] = a;
    }
    StateVector::from_amplitudes(amps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Expansion preserves the circuit unitary: fidelity between the
    /// expanded physical state and the permuted logical state is 1 up to
    /// floating-point rounding, for arbitrary circuits and bindings.
    #[test]
    fn expansion_preserves_unitary_fidelity(
        n in 2usize..5,
        raw in proptest::collection::vec(arb_raw_gate(), 1..20),
        angles in proptest::collection::vec(arb_angle(), 20),
    ) {
        let circuit = build_circuit(n, &raw);
        let theta = &angles[..circuit.n_params()];

        // Logical reference on the logical register.
        let mut reference = StateVector::zero_state(n);
        reference.run(&circuit.bind(theta));

        // Route on a line of exactly n qubits (forces SWAP insertion for
        // non-adjacent pairs without leaving idle physical qubits), then
        // expand at the bound parameters and run the native ops.
        let topo = Topology::line(n);
        let phys = route_identity(&circuit, &topo);
        let native = expand(&phys, theta);
        let mut state = StateVector::zero_state(n);
        for op in native.ops() {
            state.apply(&op.gate);
        }

        let expected = permute_to_physical(&reference, native.final_layout());
        let fidelity = expected.fidelity(&state);
        prop_assert!(
            fidelity >= 1.0 - 1e-9,
            "fidelity {fidelity} below tolerance for {} ops at θ = {:?}",
            native.ops().len(),
            theta
        );
    }
}

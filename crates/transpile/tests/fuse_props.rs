//! Property tests of the fusion pass: fused execution must be
//! **byte-identical** to op-by-op density-matrix execution for arbitrary
//! gate/noise streams — probabilities, per-qubit marginals, and the full
//! state, across random circuits, angles, noise strengths, and supports.

use proptest::prelude::*;
use quasim::density::{DensityMatrix, SimWorkspace};
use quasim::gate::{BoundGate, GateKind};
use transpile::fuse::{fuse_ops, SimOp};

const N_QUBITS: usize = 4;

#[derive(Debug, Clone)]
enum OpSpec {
    Gate1(u8, usize, f64),
    Gate2(u8, usize, usize, f64),
    Noise1(usize, f64),
    Noise2(usize, usize, f64),
}

fn arb_op(n: usize) -> impl Strategy<Value = OpSpec> {
    (
        0usize..4,
        0u8..8,
        0usize..n,
        0usize..n,
        -7.0f64..7.0,
        0.0f64..0.4,
    )
        .prop_filter_map(
            "distinct qubits for two-qubit ops",
            move |(class, kind, a, b, theta, lambda)| match class {
                0 => Some(OpSpec::Gate1(kind, a, theta)),
                1 if a != b => Some(OpSpec::Gate2(kind, a, b, theta)),
                2 => Some(OpSpec::Noise1(a, lambda)),
                3 if a != b => Some(OpSpec::Noise2(a, b, lambda)),
                _ => None,
            },
        )
}

fn build_ops(specs: &[OpSpec]) -> Vec<SimOp> {
    let g1 = [
        GateKind::H,
        GateKind::X,
        GateKind::Ry,
        GateKind::Rx,
        GateKind::Rz,
        GateKind::S,
        GateKind::Sx,
        GateKind::Phase,
    ];
    let g2 = [
        GateKind::Cx,
        GateKind::Cz,
        GateKind::Cry,
        GateKind::Crx,
        GateKind::Crz,
        GateKind::Swap,
        GateKind::Cx,
        GateKind::Cry,
    ];
    specs
        .iter()
        .map(|s| match *s {
            OpSpec::Gate1(k, q, theta) => SimOp::Gate(BoundGate::one(g1[k as usize], q, theta)),
            OpSpec::Gate2(k, a, b, theta) => {
                SimOp::Gate(BoundGate::two(g2[k as usize], a, b, theta))
            }
            OpSpec::Noise1(q, lambda) => SimOp::Depolarize1 { q, lambda },
            OpSpec::Noise2(a, b, lambda) => SimOp::Depolarize2 { a, b, lambda },
        })
        .collect()
}

/// Op-by-op reference through the public DensityMatrix API.
fn run_unfused(n_qubits: usize, ops: &[SimOp]) -> DensityMatrix {
    let mut rho = DensityMatrix::zero_state(n_qubits);
    for op in ops {
        match op {
            SimOp::Gate(g) => rho.apply_gate(g),
            SimOp::Depolarize1 { q, lambda } => rho.apply_depolarizing_1q(*lambda, *q),
            SimOp::Depolarize2 { a, b, lambda } => rho.apply_depolarizing_2q(*lambda, *a, *b),
        }
    }
    rho
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fused execution is byte-identical to unfused execution: every entry
    /// of ρ, every probability, every ⟨Z⟩ marginal.
    #[test]
    fn fused_execution_is_byte_identical(
        specs in proptest::collection::vec(arb_op(N_QUBITS), 1..40),
    ) {
        let ops = build_ops(&specs);
        let reference = run_unfused(N_QUBITS, &ops);

        let program = fuse_ops(N_QUBITS, &ops);
        let mut ws = SimWorkspace::new();
        ws.reset_zero(N_QUBITS);
        ws.run(&program);

        // Full state, bitwise.
        let fused = ws.to_density_matrix();
        for i in 0..reference.dim() {
            for j in 0..reference.dim() {
                let (x, y) = (fused.get(i, j), reference.get(i, j));
                prop_assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "ρ[{},{}] differs: {} vs {}", i, j, x, y
                );
            }
        }
        // Probabilities, bitwise.
        for (p, q) in ws.probabilities().iter().zip(reference.probabilities().iter()) {
            prop_assert!(p.to_bits() == q.to_bits(), "probability differs: {} vs {}", p, q);
        }
        // Marginals, bitwise.
        for q in 0..N_QUBITS {
            prop_assert!(
                ws.prob_one(q).to_bits() == reference.prob_one(q).to_bits(),
                "prob_one({}) differs", q
            );
        }
    }

    /// The workspace can be reused across runs without residue: a second
    /// run of the same program on a dirty workspace reproduces the first
    /// bit-for-bit, as does a fresh workspace.
    #[test]
    fn workspace_reuse_leaves_no_residue(
        specs_a in proptest::collection::vec(arb_op(N_QUBITS), 1..20),
        specs_b in proptest::collection::vec(arb_op(N_QUBITS), 1..20),
    ) {
        let prog_a = fuse_ops(N_QUBITS, &build_ops(&specs_a));
        let prog_b = fuse_ops(N_QUBITS, &build_ops(&specs_b));

        let mut fresh = SimWorkspace::new();
        fresh.reset_zero(N_QUBITS);
        fresh.run(&prog_a);
        let expected = fresh.probabilities();

        let mut reused = SimWorkspace::new();
        reused.reset_zero(N_QUBITS);
        reused.run(&prog_b); // dirty the buffer with an unrelated program
        reused.reset_zero(N_QUBITS);
        reused.run(&prog_a);
        for (p, q) in reused.probabilities().iter().zip(expected.iter()) {
            prop_assert!(p.to_bits() == q.to_bits(), "residue after reuse: {} vs {}", p, q);
        }
    }

    /// Fusion preserves physical invariants on top of byte-identity:
    /// trace 1 and Hermitian symmetry (off-block-diagonal entries are
    /// exact mirrors by construction; within diagonal blocks symmetry
    /// holds to rounding).
    #[test]
    fn fused_state_is_physical(
        specs in proptest::collection::vec(arb_op(N_QUBITS), 1..40),
    ) {
        let ops = build_ops(&specs);
        let program = fuse_ops(N_QUBITS, &ops);
        let mut ws = SimWorkspace::new();
        ws.reset_zero(N_QUBITS);
        ws.run(&program);
        let rho = ws.to_density_matrix();
        prop_assert!((rho.trace() - 1.0).abs() < 1e-9, "trace {}", rho.trace());
        prop_assert!(rho.hermiticity_error() < 1e-12, "hermiticity {}", rho.hermiticity_error());
    }
}

//! Property-based tests of the transpilation pipeline.
//!
//! The central contract: routing plus native-gate expansion implements the
//! *same unitary* as the logical circuit (checked on measurement marginals
//! via the final layout), for arbitrary circuits, parameters, and
//! topologies — and simplification at identity angles never changes
//! semantics while never lengthening the physical circuit.

use calibration::topology::Topology;
use proptest::prelude::*;
use quasim::statevector::StateVector;
use transpile::circuit::{Circuit, Param};
use transpile::expand::expand;
use transpile::route::route_identity;

#[derive(Debug, Clone)]
enum GateSpec {
    Ry(usize),
    Rx(usize),
    Rz(usize),
    H(usize),
    Cx(usize, usize),
    Cry(usize, usize),
    Crx(usize, usize),
    Crz(usize, usize),
}

fn arb_spec(n: usize) -> impl Strategy<Value = GateSpec> {
    (0usize..8, 0usize..n, 0usize..n).prop_filter_map(
        "distinct qubits for 2q gates",
        move |(k, a, b)| match k {
            0 => Some(GateSpec::Ry(a)),
            1 => Some(GateSpec::Rx(a)),
            2 => Some(GateSpec::Rz(a)),
            3 => Some(GateSpec::H(a)),
            4 if a != b => Some(GateSpec::Cx(a, b)),
            5 if a != b => Some(GateSpec::Cry(a, b)),
            6 if a != b => Some(GateSpec::Crx(a, b)),
            7 if a != b => Some(GateSpec::Crz(a, b)),
            _ => None,
        },
    )
}

fn build(n: usize, specs: &[GateSpec]) -> Circuit {
    let mut c = Circuit::new(n);
    let mut next = 0usize;
    for s in specs {
        let p = Param::Idx(next);
        match *s {
            GateSpec::Ry(q) => {
                c.ry(q, p);
                next += 1;
            }
            GateSpec::Rx(q) => {
                c.rx(q, p);
                next += 1;
            }
            GateSpec::Rz(q) => {
                c.rz(q, p);
                next += 1;
            }
            GateSpec::H(q) => {
                c.h(q);
            }
            GateSpec::Cx(a, b) => {
                c.cx(a, b);
            }
            GateSpec::Cry(a, b) => {
                c.cry(a, b, p);
                next += 1;
            }
            GateSpec::Crx(a, b) => {
                c.crx(a, b, p);
                next += 1;
            }
            GateSpec::Crz(a, b) => {
                c.crz(a, b, p);
                next += 1;
            }
        }
    }
    c
}

fn topologies() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::ibm_belem()),
        Just(Topology::ibm_jakarta()),
        Just(Topology::line(5)),
        Just(Topology::ring(5)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Routed + expanded circuits preserve every logical measurement
    /// marginal on every supported topology.
    #[test]
    fn transpilation_preserves_marginals(
        specs in proptest::collection::vec(arb_spec(4), 1..16),
        thetas in proptest::collection::vec(-6.5f64..6.5, 16),
        topo in topologies(),
    ) {
        let circuit = build(4, &specs);
        let theta = &thetas[..circuit.n_params()];

        let mut reference = StateVector::zero_state(4);
        reference.run(&circuit.bind(theta));

        let phys = route_identity(&circuit, &topo);
        prop_assert!(phys.respects_topology(&topo));
        let native = expand(&phys, theta);
        let mut sv = StateVector::zero_state(topo.n_qubits());
        for op in native.ops() {
            sv.apply(&op.gate);
        }
        for l in 0..4 {
            let p = native.measured_physical(l);
            prop_assert!(
                (reference.prob_one(l) - sv.prob_one(p)).abs() < 1e-8,
                "marginal mismatch on logical {} ({} vs {})",
                l, reference.prob_one(l), sv.prob_one(p)
            );
        }
    }

    /// Simplification at identity angles: same semantics, never longer.
    #[test]
    fn simplification_sound_and_shortening(
        specs in proptest::collection::vec(arb_spec(4), 1..14),
        thetas in proptest::collection::vec(-6.5f64..6.5, 16),
        zero_mask in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let circuit = build(4, &specs);
        let mut theta: Vec<f64> = thetas[..circuit.n_params()].to_vec();
        for (t, &z) in theta.iter_mut().zip(zero_mask.iter()) {
            if z {
                *t = 0.0;
            }
        }
        let simplified = circuit.simplified(&theta, 1e-9);
        prop_assert!(simplified.len() <= circuit.len());

        // Same state on the logical register.
        let mut a = StateVector::zero_state(4);
        a.run(&circuit.bind(&theta));
        let mut b = StateVector::zero_state(4);
        b.run(&simplified.bind(&theta));
        prop_assert!((a.fidelity(&b) - 1.0).abs() < 1e-8);

        // On a *fixed* routing, vanished gates strictly shorten the
        // expansion. (Re-routing the simplified circuit is shorter in
        // practice but not universally — greedy SWAP insertion is not
        // monotone under gate removal, as a saved regression case shows.)
        let topo = Topology::ibm_belem();
        let phys = route_identity(&circuit, &topo);
        let mut generic = theta.clone();
        for (g, &z) in generic.iter_mut().zip(zero_mask.iter()) {
            if z {
                *g = 0.7;
            }
        }
        let len_zeroed = expand(&phys, &theta).length();
        let len_generic = expand(&phys, &generic).length();
        prop_assert!(len_zeroed <= len_generic);
    }

    /// Routing leaves 1-qubit-only circuits untouched and is idempotent in
    /// cost for already-coupled circuits.
    #[test]
    fn routing_no_swaps_when_adjacent(
        angles in proptest::collection::vec(-3.0f64..3.0, 4),
    ) {
        let topo = Topology::line(4);
        let mut c = Circuit::new(4);
        for (q, _) in angles.iter().enumerate() {
            c.ry(q, Param::Idx(q));
        }
        for q in 0..3 {
            c.cx(q, q + 1); // all adjacent on the line
        }
        let phys = route_identity(&c, &topo);
        prop_assert_eq!(phys.swap_count(), 0);
        prop_assert_eq!(phys.final_layout(), &[0, 1, 2, 3]);
    }
}

//! Property-based tests of [`transpile::route`]: for arbitrary circuits on
//! every supported device — `ibm_belem`, `ibm_jakarta`, the 16-qubit
//! `ibm_guadalupe`, and generic line/ring maps — the routed circuit must
//! place every two-qubit gate on a physical coupling edge, and the tracked
//! qubit permutation must be exactly what the inserted SWAPs imply.

use calibration::topology::Topology;
use proptest::prelude::*;
use quasim::gate::GateKind;
use transpile::circuit::{Circuit, Param};
use transpile::route::route;

/// The devices routing must support, including the 16-qubit guadalupe map
/// that only the trajectory simulation backend can execute.
fn device(idx: usize) -> Topology {
    match idx {
        0 => Topology::ibm_belem(),
        1 => Topology::ibm_jakarta(),
        2 => Topology::ibm_guadalupe(),
        3 => Topology::line(6),
        _ => Topology::ring(6),
    }
}

/// A raw gate spec; qubit indices are reduced modulo the logical register
/// size at build time so one strategy serves every device.
#[derive(Debug, Clone, Copy)]
enum RawGate {
    Ry(usize),
    Rz(usize),
    H(usize),
    Cx(usize, usize),
    Cry(usize, usize),
    Crz(usize, usize),
}

fn arb_raw_gate() -> impl Strategy<Value = RawGate> {
    (0usize..6, 0usize..64, 0usize..64).prop_map(|(k, a, b)| match k {
        0 => RawGate::Ry(a),
        1 => RawGate::Rz(a),
        2 => RawGate::H(a),
        3 => RawGate::Cx(a, b),
        4 => RawGate::Cry(a, b),
        _ => RawGate::Crz(a, b),
    })
}

/// Builds a circuit over `n` logical qubits, skipping degenerate 2-qubit
/// specs whose operands collide after the modulo reduction.
fn build_circuit(n: usize, raw: &[RawGate]) -> Circuit {
    let mut c = Circuit::new(n);
    let mut next = 0usize;
    for g in raw {
        match *g {
            RawGate::Ry(q) => {
                c.ry(q % n, Param::Idx(next));
                next += 1;
            }
            RawGate::Rz(q) => {
                c.rz(q % n, Param::Idx(next));
                next += 1;
            }
            RawGate::H(q) => {
                c.h(q % n);
            }
            RawGate::Cx(a, b) if a % n != b % n => {
                c.cx(a % n, b % n);
            }
            RawGate::Cry(a, b) if a % n != b % n => {
                c.cry(a % n, b % n, Param::Idx(next));
                next += 1;
            }
            RawGate::Crz(a, b) if a % n != b % n => {
                c.crz(a % n, b % n, Param::Idx(next));
                next += 1;
            }
            _ => {}
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every two-qubit op of a routed circuit — the original gates *and*
    /// the inserted SWAPs — sits on a coupling edge of the device.
    #[test]
    fn routed_two_qubit_gates_sit_on_edges(
        device_idx in 0usize..5,
        raw in proptest::collection::vec(arb_raw_gate(), 0..24),
        wide in any::<bool>(),
    ) {
        let topo = device(device_idx);
        // Exercise both narrow circuits (lots of idle physical qubits) and
        // circuits as wide as the device allows.
        let n = if wide { topo.n_qubits().min(6) } else { 2 + device_idx % 3 };
        let circuit = build_circuit(n, &raw);
        let phys = route(&circuit, &topo, None);
        for (i, op) in phys.ops().iter().enumerate() {
            if let [a, b] = op.qubits.as_slice() {
                prop_assert!(
                    topo.is_edge(*a, *b),
                    "op {i} ({:?}) addresses uncoupled pair ({a},{b}) on {}",
                    op.kind,
                    topo.name()
                );
            }
        }
        prop_assert!(phys.respects_topology(&topo));
    }

    /// The routed op stream is the logical op stream with SWAPs spliced
    /// in: replaying the SWAPs from the initial layout reproduces both the
    /// physical operands of every gate and the final layout.
    #[test]
    fn layout_tracking_is_consistent_with_inserted_swaps(
        device_idx in 0usize..5,
        raw in proptest::collection::vec(arb_raw_gate(), 0..24),
    ) {
        let topo = device(device_idx);
        let n = (2 + raw.len() % 4).min(topo.n_qubits());
        let circuit = build_circuit(n, &raw);
        let phys = route(&circuit, &topo, None);

        // layout[logical] = physical, replayed op by op.
        let mut layout = phys.initial_layout().to_vec();
        let mut logical_ops = circuit.ops().iter();
        for op in phys.ops() {
            if op.kind == GateKind::Swap {
                // A SWAP exchanges whatever logical qubits live on its
                // physical operands (either side may be unoccupied).
                let (pa, pb) = (op.qubits[0], op.qubits[1]);
                for slot in &mut layout {
                    if *slot == pa {
                        *slot = pb;
                    } else if *slot == pb {
                        *slot = pa;
                    }
                }
            } else {
                let orig = logical_ops.next().expect("more routed ops than logical ops");
                prop_assert_eq!(op.kind, orig.kind);
                prop_assert_eq!(&op.param, &orig.param);
                let expect: Vec<usize> = orig.qubits.iter().map(|&l| layout[l]).collect();
                prop_assert!(
                    op.qubits == expect,
                    "gate operands {:?} disagree with the SWAP-tracked layout {:?}",
                    op.qubits,
                    expect
                );
            }
        }
        prop_assert!(logical_ops.next().is_none(), "routing dropped a gate");
        prop_assert_eq!(layout, phys.final_layout().to_vec());

        // The final layout must still be an injective logical→physical map.
        let mut seen = vec![false; topo.n_qubits()];
        for &p in phys.final_layout() {
            prop_assert!(p < topo.n_qubits());
            prop_assert!(!seen[p], "final layout maps two logical qubits to {p}");
            seen[p] = true;
        }
    }
}

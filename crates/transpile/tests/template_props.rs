//! Property tests of the compile-once/rebind-many templates: whenever two
//! parameter vectors share a [`StructureKey`], re-binding a template
//! compiled at the first must be **value-identical** (hence bit-identical
//! matrices) to a from-scratch simplify → route → expand compile at the
//! second — across random circuits, angle mixes (generic, quarter-turn,
//! identity), and topologies.

use calibration::topology::Topology;
use proptest::prelude::*;
use transpile::circuit::{Circuit, Param};
use transpile::expand::{expand, ANGLE_TOL};
use transpile::route::route;
use transpile::template::{structure_key, CircuitTemplate};

const N_QUBITS: usize = 4;

#[derive(Debug, Clone)]
enum GateSpec {
    Ry(usize),
    Rz(usize),
    Rx(usize),
    Cry(usize, usize),
    Crx(usize, usize),
    Crz(usize, usize),
    H(usize),
    Cx(usize, usize),
}

fn arb_gate(n: usize) -> impl Strategy<Value = GateSpec> {
    (0usize..8, 0usize..n, 0usize..n).prop_filter_map(
        "distinct qubits for two-qubit gates",
        move |(class, a, b)| match class {
            0 => Some(GateSpec::Ry(a)),
            1 => Some(GateSpec::Rz(a)),
            2 => Some(GateSpec::Rx(a)),
            3 if a != b => Some(GateSpec::Cry(a, b)),
            4 if a != b => Some(GateSpec::Crx(a, b)),
            5 if a != b => Some(GateSpec::Crz(a, b)),
            6 => Some(GateSpec::H(a)),
            7 if a != b => Some(GateSpec::Cx(a, b)),
            _ => None,
        },
    )
}

/// Builds a circuit where gate `i` reads parameter `i` (fixed gates take
/// no parameter but keep the count monotone for simplicity).
fn build_circuit(specs: &[GateSpec]) -> Circuit {
    let mut c = Circuit::new(N_QUBITS);
    for (i, spec) in specs.iter().enumerate() {
        match *spec {
            GateSpec::Ry(q) => {
                c.ry(q, Param::Idx(i));
            }
            GateSpec::Rz(q) => {
                c.rz(q, Param::Idx(i));
            }
            GateSpec::Rx(q) => {
                c.rx(q, Param::Idx(i));
            }
            GateSpec::Cry(a, b) => {
                c.cry(a, b, Param::Idx(i));
            }
            GateSpec::Crx(a, b) => {
                c.crx(a, b, Param::Idx(i));
            }
            GateSpec::Crz(a, b) => {
                c.crz(a, b, Param::Idx(i));
            }
            GateSpec::H(q) => {
                c.h(q);
            }
            GateSpec::Cx(a, b) => {
                c.cx(a, b);
            }
        }
    }
    c
}

/// An angle that lands on one of the structural classes: identity (0),
/// quarter turns, half turns, or a generic value — plus 2π/4π wraps so the
/// modular classification is exercised.
fn arb_angle() -> impl Strategy<Value = f64> {
    use std::f64::consts::{FRAC_PI_2, PI, TAU};
    prop_oneof![
        Just(0.0),
        Just(FRAC_PI_2),
        Just(-FRAC_PI_2),
        Just(PI),
        Just(3.0 * FRAC_PI_2),
        Just(TAU),
        Just(2.0 * TAU),
        Just(-TAU),
        -7.0f64..7.0,
    ]
}

/// From-scratch pipeline at `theta`.
fn from_scratch(circuit: &Circuit, topo: &Topology, theta: &[f64]) -> transpile::NativeCircuit {
    expand(
        &route(&circuit.simplified(theta, ANGLE_TOL), topo, None),
        theta,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Re-binding a template at any same-key parameter vector reproduces
    /// the from-scratch compile exactly (op kinds, qubits, pulse counts,
    /// and bound angles — `NativeCircuit: PartialEq` compares all of them,
    /// and `f64` equality here means identical bits for non-NaN angles).
    #[test]
    fn rebind_equals_from_scratch_for_equal_keys(
        specs in proptest::collection::vec(arb_gate(N_QUBITS), 1..20),
        thetas in proptest::collection::vec(
            proptest::collection::vec(arb_angle(), 20), 2..5),
    ) {
        let circuit = build_circuit(&specs);
        let topo = Topology::ibm_belem();
        let first = &thetas[0];
        let template = CircuitTemplate::compile(&circuit, &topo, first, ANGLE_TOL);
        prop_assert_eq!(template.bind(first), from_scratch(&circuit, &topo, first));
        for theta in &thetas[1..] {
            let same_key = structure_key(&circuit, theta, ANGLE_TOL) == *template.key();
            if same_key {
                prop_assert_eq!(template.bind(theta), from_scratch(&circuit, &topo, theta));
            } else {
                // Different key: a fresh template at that vector must
                // itself round-trip.
                let other = CircuitTemplate::compile(&circuit, &topo, theta, ANGLE_TOL);
                prop_assert_eq!(other.bind(theta), from_scratch(&circuit, &topo, theta));
            }
        }
    }

    /// The key is sound: equal keys imply value-identical simplified
    /// circuits (the input routing sees), so the cached route is valid for
    /// every same-key vector.
    #[test]
    fn equal_keys_imply_identical_simplified_structure(
        specs in proptest::collection::vec(arb_gate(N_QUBITS), 1..20),
        theta_a in proptest::collection::vec(arb_angle(), 20),
        theta_b in proptest::collection::vec(arb_angle(), 20),
    ) {
        let circuit = build_circuit(&specs);
        let ka = structure_key(&circuit, &theta_a, ANGLE_TOL);
        let kb = structure_key(&circuit, &theta_b, ANGLE_TOL);
        if ka == kb {
            let sa = circuit.simplified(&theta_a, ANGLE_TOL);
            let sb = circuit.simplified(&theta_b, ANGLE_TOL);
            prop_assert_eq!(sa.ops(), sb.ops());
            // And the native schedules agree structurally: same kinds and
            // qubits op for op (pulse costs may differ — they are
            // re-derived from the actual angles at bind time).
            let na = from_scratch(&circuit, &Topology::ibm_belem(), &theta_a);
            let nb = from_scratch(&circuit, &Topology::ibm_belem(), &theta_b);
            prop_assert_eq!(na.ops().len(), nb.ops().len());
            for (x, y) in na.ops().iter().zip(nb.ops().iter()) {
                prop_assert_eq!(x.gate.kind(), y.gate.kind());
                prop_assert_eq!(x.gate.qubits(), y.gate.qubits());
            }
        }
    }
}

//! Workspace automation tasks (`cargo run -p xtask -- <task>`).
//!
//! The only task today is `lint`: a hand-rolled line scanner (the build
//! environment has no crates.io access, so no syn/regex) enforcing the
//! project's determinism and unsafe-readiness rules over the source tree.
//! See the rule catalogue in [`rules`] and the "Correctness tooling"
//! section of the README.
//!
//! Audited exceptions are annotated in the source with
//! `// qucad-lint: allow(<rule>)` on the offending line or the line
//! directly above it; an annotation that suppresses nothing is itself an
//! error, so stale allows cannot accumulate.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod rules;
mod scan;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task '{other}'; available tasks: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

/// Runs every lint rule over the workspace's own sources; prints one line
/// per finding and exits non-zero if any rule fires.
fn lint() -> ExitCode {
    let root = workspace_root();
    let files = collect_sources(&root);
    let mut findings = Vec::new();
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            eprintln!("warning: unreadable source file {}", file.display());
            continue;
        };
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan::scan_file(&rel, &text));
    }
    if findings.is_empty() {
        println!("qucad-lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "qucad-lint: {} finding(s) in {} files",
            findings.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

/// The workspace root: xtask always runs via `cargo run -p xtask`, so the
/// manifest dir is `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

/// Every `.rs` file the lint covers: workspace sources and tests, skipping
/// the vendored stand-ins (external idiom, not project code) and build
/// artifacts. Sorted for deterministic output.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(name.as_ref(), "target" | "vendor" | ".git" | ".github") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

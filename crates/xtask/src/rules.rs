//! The qucad-lint rule catalogue.
//!
//! Five rules guard the properties the reproduction's bit-identity
//! contract depends on (see README "Correctness tooling"):
//!
//! - `hash-iter` — no iteration over `HashMap`/`HashSet` contents in
//!   result-affecting paths: hash iteration order is unspecified, so any
//!   result folded from it is nondeterministic. Lookups (`get`/`insert`/
//!   `contains_key`/`len`/`clear`) are fine.
//! - `wall-clock` — no `SystemTime`/`Instant` outside `crates/bench`:
//!   wall-clock reads in compute paths smuggle nondeterminism (and the
//!   temptation to branch on it) into results.
//! - `adhoc-rng` — no `thread_rng`/`from_entropy`/`rand::random` outside
//!   `crates/bench`: every random stream must come from an explicitly
//!   seeded generator so runs replay bit-exactly.
//! - `unsafe-safety` — every `unsafe` token carries a `// SAFETY:`
//!   comment on the same line or within the three lines above it.
//! - `env-read` — `env::var` reads only at the audited configuration
//!   entry points (each carries an allow annotation); scattered env reads
//!   make results depend on invisible ambient state.
//!
//! Audited exceptions: `// qucad-lint: allow(<rule>)` on the offending
//! line or the line above. Unused annotations are themselves findings.

use crate::scan::{find_token, has_token, FileView, Finding};

/// Canonical rule names (the alphabet accepted by allow annotations).
pub const RULE_NAMES: [&str; 5] = [
    "hash-iter",
    "wall-clock",
    "adhoc-rng",
    "unsafe-safety",
    "env-read",
];

/// Maps an annotation name onto its canonical `&'static str`, if valid.
pub fn rule_name(name: &str) -> Option<&'static str> {
    RULE_NAMES.iter().copied().find(|&r| r == name)
}

/// Runs every rule that applies to the file's path.
pub fn check_all(view: &FileView<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(hash_iter(view));
    if !view.path.starts_with("crates/bench/") {
        out.extend(token_rule(
            view,
            "wall-clock",
            &["SystemTime", "Instant"],
            "wall-clock read in a deterministic path (bench-only API)",
        ));
        out.extend(token_rule(
            view,
            "adhoc-rng",
            &["thread_rng", "from_entropy", "rand::random"],
            "unseeded RNG in a deterministic path (seed explicitly)",
        ));
    }
    out.extend(unsafe_safety(view));
    out.extend(env_read(view));
    out
}

/// Shared shape of the single-token rules: flag every line whose code
/// view contains one of `tokens` as a standalone word.
fn token_rule(
    view: &FileView<'_>,
    rule: &'static str,
    tokens: &[&str],
    message: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, code) in view.code.iter().enumerate() {
        for token in tokens {
            if has_token(code, token) {
                out.push(Finding {
                    file: view.path.to_string(),
                    line: i + 1,
                    rule,
                    message: format!("{message}: `{token}`"),
                });
                break;
            }
        }
    }
    out
}

/// Method suffixes that iterate a hash container's contents.
const ITER_SUFFIXES: [&str; 8] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".retain(",
];

/// `hash-iter`: two passes per file. First collect every identifier
/// bound or typed as a `HashMap`/`HashSet` (let-bindings, struct fields,
/// parameters); then flag iteration over any of them — method calls in
/// [`ITER_SUFFIXES`] or `for … in [&[mut ]]name`.
fn hash_iter(view: &FileView<'_>) -> Vec<Finding> {
    let mut names: Vec<String> = Vec::new();
    for code in &view.code {
        if !(has_token(code, "HashMap") || has_token(code, "HashSet")) {
            continue;
        }
        // `let [mut] name` on the same line as the hash type.
        if let Some(at) = find_token(code, "let") {
            let rest = code[at + 3..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            if let Some(name) = leading_ident(rest) {
                names.push(name.to_string());
            }
        }
        // `name: HashMap<…>` (fields and parameters).
        for ty in ["HashMap", "HashSet"] {
            let Some(at) = find_token(code, ty) else {
                continue;
            };
            let before = code[..at].trim_end();
            if let Some(before) = before.strip_suffix(':') {
                if let Some(name) = trailing_ident(before.trim_end()) {
                    names.push(name.to_string());
                }
            }
        }
    }
    names.sort();
    names.dedup();

    let mut out = Vec::new();
    for (i, code) in view.code.iter().enumerate() {
        for name in &names {
            let iterated =
                ITER_SUFFIXES.iter().any(|s| has_call(code, name, s)) || for_loop_over(code, name);
            if iterated {
                out.push(Finding {
                    file: view.path.to_string(),
                    line: i + 1,
                    rule: "hash-iter",
                    message: format!(
                        "iteration over hash container `{name}` \
                         (unspecified order; use a sorted or indexed structure)"
                    ),
                });
                break;
            }
        }
    }
    out
}

/// Whether `code` contains `name` (word-boundary) immediately followed by
/// `suffix`.
fn has_call(code: &str, name: &str, suffix: &str) -> bool {
    let needle = format!("{name}{suffix}");
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(at) = code[from..].find(&needle) {
        let start = from + at;
        if start == 0 || !is_ident(code.as_bytes()[start - 1]) {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Whether `code` has a `for … in <expr>` loop header whose iterated
/// expression mentions `name` (e.g. `for x in &cache.entries {`).
fn for_loop_over(code: &str, name: &str) -> bool {
    if find_token(code, "for").is_none() {
        return false;
    }
    let Some(at) = find_token(code, "in") else {
        return false;
    };
    let rest = &code[at + 2..];
    let expr = rest.split('{').next().unwrap_or(rest);
    has_token(expr, name)
}

/// The identifier at the start of `s`, if any.
fn leading_ident(s: &str) -> Option<&str> {
    let end = s
        .bytes()
        .position(|b| !(b.is_ascii_alphanumeric() || b == b'_'))
        .unwrap_or(s.len());
    if end == 0 || s.as_bytes()[0].is_ascii_digit() {
        None
    } else {
        Some(&s[..end])
    }
}

/// The identifier at the end of `s`, if any.
fn trailing_ident(s: &str) -> Option<&str> {
    let start = s
        .bytes()
        .rposition(|b| !(b.is_ascii_alphanumeric() || b == b'_'))
        .map_or(0, |p| p + 1);
    if start == s.len() || s.as_bytes()[start].is_ascii_digit() {
        None
    } else {
        Some(&s[start..])
    }
}

/// `unsafe-safety`: every `unsafe` token must carry a `SAFETY:` comment
/// on its own line or within the three raw lines above it.
fn unsafe_safety(view: &FileView<'_>) -> Vec<Finding> {
    let marker = ["SAFE", "TY:"].concat();
    let mut out = Vec::new();
    for (i, code) in view.code.iter().enumerate() {
        if !has_token(code, "unsafe") {
            continue;
        }
        let from = i.saturating_sub(3);
        let documented = view.raw[from..=i].iter().any(|l| l.contains(&marker));
        if !documented {
            out.push(Finding {
                file: view.path.to_string(),
                line: i + 1,
                rule: "unsafe-safety",
                message: format!(
                    "`unsafe` without a `// {marker}` comment on the same \
                     line or the three lines above"
                ),
            });
        }
    }
    out
}

/// `env-read`: `env::var` only at audited entry points (which carry an
/// allow annotation).
fn env_read(view: &FileView<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, code) in view.code.iter().enumerate() {
        if has_token(code, "env::var") || has_token(code, "var_os") {
            out.push(Finding {
                file: view.path.to_string(),
                line: i + 1,
                rule: "env-read",
                message: "environment read outside an audited config entry point".to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::scan::scan_file;

    #[test]
    fn hash_iteration_is_flagged_but_lookups_are_not() {
        let src = "struct C { entries: HashMap<K, V> }\n\
                   fn ok(c: &C, k: &K) { c.entries.get(k); c.entries.len(); }\n\
                   fn bad(c: &C) { for v in c.entries.values() { use_it(v); } }\n";
        let findings = scan_file("crates/qnn/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "hash-iter");
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn let_bound_hash_sets_are_tracked() {
        let src = "fn f() {\n\
                   let mut seen = HashSet::new();\n\
                   seen.insert(1);\n\
                   for x in &seen { g(x); }\n\
                   }\n";
        let findings = scan_file("crates/quasim/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn wall_clock_and_rng_are_bench_only() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }\n";
        assert_eq!(scan_file("crates/bench/src/x.rs", src).len(), 0);
        let findings = scan_file("crates/quasim/src/x.rs", src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().any(|f| f.rule == "wall-clock"));
        assert!(findings.iter().any(|f| f.rule == "adhoc-rng"));
    }

    #[test]
    fn undocumented_unsafe_is_flagged_everywhere() {
        let bare = "fn f() { unsafe { g() } }\n";
        let findings = scan_file("crates/bench/src/x.rs", bare);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unsafe-safety");
        let marker = ["// SAFE", "TY: g has no preconditions"].concat();
        let documented = format!("{marker}\nfn f() {{ unsafe {{ g() }} }}\n");
        assert!(scan_file("crates/bench/src/x.rs", &documented).is_empty());
    }

    #[test]
    fn forbid_unsafe_code_attribute_is_not_an_unsafe_token() {
        let src = "#![forbid(unsafe_code)]\n";
        assert!(scan_file("crates/qnn/src/lib.rs", src).is_empty());
    }

    #[test]
    fn env_reads_need_an_audited_annotation() {
        let src = "fn f() { let v = std::env::var(\"QUCAD_X\"); }\n";
        let findings = scan_file("crates/qnn/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "env-read");
        let marker = format!("// qucad-lint: {}", "allow(env-read)");
        let ok = format!("{marker}\nfn f() {{ let v = std::env::var(\"QUCAD_X\"); }}\n");
        assert!(scan_file("crates/qnn/src/x.rs", &ok).is_empty());
    }
}

//! File scanning: comment/string stripping, allow-annotation handling,
//! and the finding type shared by every rule.

use crate::rules;

/// One lint finding, printed as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (the name accepted by allow annotations).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A source file prepared for rule checks: raw lines plus a "code view"
/// with string literals and comments blanked out, so patterns inside
/// doc text, comments, or string literals never trip a rule.
pub struct FileView<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Raw lines, as written.
    pub raw: Vec<&'a str>,
    /// Per-line code view (strings/comments replaced by spaces).
    pub code: Vec<String>,
}

/// Scans one file: builds the code view, runs every rule, applies allow
/// annotations, and reports unused annotations.
pub fn scan_file(path: &str, text: &str) -> Vec<Finding> {
    let raw: Vec<&str> = text.lines().collect();
    let code = strip(text);
    debug_assert_eq!(code.len(), raw.len(), "code view must mirror raw lines");
    let view = FileView { path, raw, code };

    let mut findings = rules::check_all(&view);
    findings.sort_by_key(|f| (f.line, f.rule));

    // Allow annotations: `qucad-lint: allow(<rule>)` suppresses findings
    // of <rule> on its own line and the line below.
    let allows = collect_allows(&view.raw);
    let mut used = vec![false; allows.len()];
    findings.retain(|f| {
        let mut suppressed = false;
        for (i, a) in allows.iter().enumerate() {
            if a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                used[i] = true;
                suppressed = true;
            }
        }
        !suppressed
    });
    for (a, used) in allows.iter().zip(used) {
        if !used {
            findings.push(Finding {
                file: path.to_string(),
                line: a.line,
                rule: "unused-allow",
                message: format!(
                    "allow({}) suppresses nothing; remove the stale annotation",
                    a.rule
                ),
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// One parsed allow annotation.
struct Allow {
    /// 1-based line the annotation sits on.
    line: usize,
    /// The rule it suppresses.
    rule: &'static str,
}

/// Extracts allow annotations from the raw lines. The marker is assembled
/// at runtime so the scanner does not read its own pattern as an
/// annotation when linting this file.
fn collect_allows(raw: &[&str]) -> Vec<Allow> {
    let marker = ["qucad-lint:", " allow("].concat();
    let mut out = Vec::new();
    for (i, line) in raw.iter().enumerate() {
        let mut rest = *line;
        while let Some(at) = rest.find(&marker) {
            rest = &rest[at + marker.len()..];
            let Some(close) = rest.find(')') else { break };
            let names = &rest[..close];
            rest = &rest[close + 1..];
            for name in names.split(',') {
                if let Some(rule) = rules::rule_name(name.trim()) {
                    out.push(Allow { line: i + 1, rule });
                }
            }
        }
    }
    out
}

/// Blanks string literals and comments out of the source, preserving the
/// line structure (each removed character becomes a space). Handles line
/// comments, nested-free block comments, ordinary/raw string literals,
/// and char literals enough for token scanning; lifetimes (`'a`) are left
/// intact.
fn strip(text: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum State {
        Code,
        Block,
        Str,
        RawStr(usize),
    }
    let mut state = State::Code;
    let mut out = Vec::new();
    // Byte length of the UTF-8 character starting at `i`, so the scanner
    // always advances on character boundaries (string literals may hold
    // multi-byte text like `π`).
    let char_len = |line: &str, i: usize| line[i..].chars().next().map_or(1, char::len_utf8);
    for line in text.lines() {
        let bytes = line.as_bytes();
        let mut kept = vec![b' '; bytes.len()];
        let mut i = 0;
        while i < bytes.len() {
            match state {
                State::Code => {
                    let rest = &line[i..];
                    if rest.starts_with("//") {
                        break; // rest of the line is comment
                    } else if rest.starts_with("/*") {
                        state = State::Block;
                        i += 2;
                    } else if rest.starts_with('"') {
                        state = State::Str;
                        i += 1;
                    } else if let Some((h, open_len)) = raw_string_open(rest) {
                        state = State::RawStr(h);
                        i += open_len; // br##" etc.
                    } else if rest.starts_with('\'') {
                        // Char literal or lifetime: a closing quote within
                        // a few bytes means a literal; otherwise keep it
                        // (lifetime) and move on.
                        if let Some(len) = char_literal_len(rest) {
                            i += len;
                        } else {
                            kept[i] = bytes[i];
                            i += 1;
                        }
                    } else {
                        let n = char_len(line, i);
                        kept[i..i + n].copy_from_slice(&bytes[i..i + n]);
                        i += n;
                    }
                }
                State::Block => {
                    if line[i..].starts_with("*/") {
                        state = State::Code;
                        i += 2;
                    } else {
                        i += char_len(line, i);
                    }
                }
                State::Str => {
                    if line[i..].starts_with('\\') {
                        // An escape is ASCII-led; its payload may still be
                        // multi-byte, which the next iteration handles.
                        i += 2;
                        i = i.min(bytes.len());
                        while i < bytes.len() && !line.is_char_boundary(i) {
                            i += 1;
                        }
                    } else {
                        if line[i..].starts_with('"') {
                            state = State::Code;
                        }
                        i += char_len(line, i);
                    }
                }
                State::RawStr(h) => {
                    if bytes[i] == b'"' && line.as_bytes()[i + 1..].starts_with(&vec![b'#'; h][..])
                    {
                        state = State::Code;
                        i += h + 1;
                    } else {
                        i += char_len(line, i);
                    }
                }
            }
        }
        // Strings continue across lines; everything else resets at EOL.
        if state == State::Block {
            // block comments continue too
        } else if !matches!(state, State::Str | State::RawStr(_)) {
            state = State::Code;
        }
        out.push(String::from_utf8(kept).expect("ascii blanks"));
    }
    out
}

/// If `rest` starts a raw string literal (`r"`, `r#"`, `br##"`, …),
/// returns its `#` count and the opening delimiter's byte length.
fn raw_string_open(rest: &str) -> Option<(usize, usize)> {
    let s = rest.strip_prefix('b').unwrap_or(rest);
    let s = s.strip_prefix('r')?;
    let hashes = s.len() - s.trim_start_matches('#').len();
    if s[hashes..].starts_with('"') {
        Some((hashes, rest.len() - s.len() + hashes + 1))
    } else {
        None
    }
}

/// Length of a char literal at the start of `rest`, or `None` for a
/// lifetime.
fn char_literal_len(rest: &str) -> Option<usize> {
    let bytes = rest.as_bytes();
    if bytes.len() >= 2 && bytes[1] == b'\\' {
        // Escaped char: find the closing quote.
        rest[2..].find('\'').map(|p| p + 3)
    } else {
        // `'x'` with a possibly multi-byte payload (e.g. `'π'`); anything
        // else is a lifetime such as `'a` or `'static`.
        let payload = rest[1..].chars().next()?;
        let n = payload.len_utf8();
        (bytes.len() > 1 + n && bytes[1 + n] == b'\'').then_some(n + 2)
    }
}

/// Whether `code` contains `token` as a standalone word (neither side is
/// an identifier character).
pub fn has_token(code: &str, token: &str) -> bool {
    find_token(code, token).is_some()
}

/// Byte offset of the first standalone-word occurrence of `token`.
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find(token) {
        let start = from + at;
        let end = start + token.len();
        let ok_before = start == 0 || !is_ident(bytes[start - 1]);
        let ok_after = end >= bytes.len() || !is_ident(bytes[end]);
        if ok_before && ok_after {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_strings_comments_and_char_literals() {
        let src = "let a = \"SystemTime\"; // Instant in a comment\nlet b = 'x'; /* Instant */ let c = 1;\n";
        let code = strip(src);
        assert!(!code[0].contains("SystemTime"));
        assert!(!code[0].contains("Instant"));
        assert!(code[0].contains("let a ="));
        assert!(!code[1].contains("Instant"));
        assert!(code[1].contains("let c = 1;"));
    }

    #[test]
    fn keeps_lifetimes_and_spans_multiline_strings() {
        let src =
            "fn f<'a>(x: &'a str) {}\nlet s = \"multi\nInstant still string\";\nlet done = 1;\n";
        let code = strip(src);
        assert!(code[0].contains("fn f<'a>(x: &'a str) {}"));
        assert!(!code[1].contains("multi"));
        assert!(!code[2].contains("Instant"));
        assert!(code[3].contains("let done = 1;"));
    }

    #[test]
    fn survives_multibyte_text_in_literals() {
        let src = "let s = \"coarse {0, π}\"; let c = 'π'; // π comment\nlet done = Instant;\n";
        let code = strip(src);
        assert!(!code[0].contains('π'));
        assert!(code[0].contains("let c ="));
        assert!(code[1].contains("Instant"));
    }

    #[test]
    fn token_matching_respects_word_boundaries() {
        assert!(has_token("use std::time::Instant;", "Instant"));
        assert!(!has_token("unsafe_code = 1", "unsafe"));
        assert!(has_token("unsafe { x }", "unsafe"));
        assert!(!has_token("MyInstant", "Instant"));
    }

    #[test]
    fn unused_allow_is_reported() {
        let marker = format!("// qucad-lint: {}", "allow(wall-clock)");
        let src = format!("{marker}\nlet x = 1;\n");
        let findings = scan_file("test.rs", &src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unused-allow");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn allow_suppresses_same_and_next_line() {
        let marker = format!("// qucad-lint: {}", "allow(wall-clock)");
        let src = format!("{marker}\nlet t = std::time::Instant::now();\n");
        assert!(scan_file("crates/quasim/src/x.rs", &src).is_empty());
        let inline = format!("let t = std::time::Instant::now(); {marker}");
        assert!(scan_file("crates/quasim/src/x.rs", &inline).is_empty());
    }
}

//! Earthquake-detection monitoring: the paper's motivating deployment.
//!
//! A seismic-event classifier must run **every day** on a quantum processor
//! whose noise drifts. This example builds the full QuCAD pipeline — offline
//! repository from historical calibrations, then a month of online days —
//! and prints the manager's decision (reuse / compress / failure report)
//! plus the day's accuracy.
//!
//! ```text
//! cargo run --release --example earthquake_monitor
//! ```

use calibration::history::{FluctuatingHistory, HistoryConfig};
use calibration::topology::Topology;
use qnn::data::Dataset;
use qnn::executor::NoiseOptions;
use qnn::model::VqcModel;
use qnn::train::{evaluate, train, Env, TrainConfig};
use qucad::framework::{OnlineDecision, Qucad, QucadConfig};

fn main() {
    let topo = Topology::ibm_belem();
    let history = FluctuatingHistory::generate(&topo, &HistoryConfig::belem_like(90, 11), 60);
    let data = Dataset::seismic(96, 48, 11);
    let model = VqcModel::paper_model(4, 2, 4, 2);
    let noise = NoiseOptions {
        scale: 3.0,
        ..NoiseOptions::with_shots(1024, 11)
    };

    println!("training the detector noise-free ...");
    let base = train(
        &model,
        &data.train,
        Env::Pure,
        &TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
        &model.init_weights(3),
    );

    println!("building the model repository from 60 days of history ...");
    let config = QucadConfig {
        k: 4,
        max_offline_evals: 24,
        eval_samples: 32,
        // Require 60% accuracy; worse matches produce failure reports
        // (Guidance 2) instead of silently degraded predictions.
        accuracy_requirement: Some(0.60),
        ..QucadConfig::default()
    };
    let (mut qucad, stats) = Qucad::build_offline(
        &model,
        &topo,
        noise,
        history.offline(),
        &data.train,
        &data.test,
        &base.weights,
        &config,
    );
    println!(
        "repository ready: {} entries, guidance threshold {:.4}, offline cost {} evals",
        stats.n_entries, stats.threshold, stats.n_evals
    );

    println!("\n--- 30 days of monitoring ---");
    let exec = qucad.executor().clone();
    for snap in history.online() {
        let (weights, decision, cost) = qucad.online_day(snap);
        let env = Env::Noisy {
            exec: &exec,
            snapshot: snap,
        };
        let acc = evaluate(&model, env, &data.test, &weights);
        let what = match &decision {
            OnlineDecision::Reused { index, distance } => {
                format!("reuse entry {index} (distance {distance:.4})")
            }
            OnlineDecision::Compressed { index } => {
                format!("NEW compression -> entry {index} ({cost} evals)")
            }
            OnlineDecision::Failure {
                predicted_accuracy, ..
            } => {
                format!(
                    "FAILURE REPORT: predicted accuracy {predicted_accuracy:.2} \
                     below requirement"
                )
            }
        };
        println!("day {:>3}: accuracy {acc:.3}  |  {what}", snap.day);
    }
}

//! Observation 1, live: fluctuating noise collapses a day-1-adapted model.
//!
//! Trains a 4-class MNIST QNN, adapts it to day 1's noise with
//! noise-injection training (QuantumNAT-style), then tracks daily accuracy
//! across a fluctuating month — against QuCAD, which re-adapts via its
//! repository. A tiny ASCII sparkline shows the collapse and recovery.
//!
//! ```text
//! cargo run --release --example mnist_fluctuation
//! ```

use calibration::history::{FluctuatingHistory, HistoryConfig};
use calibration::topology::Topology;
use qnn::data::Dataset;
use qnn::executor::{NoiseOptions, NoisyExecutor};
use qnn::model::VqcModel;
use qnn::train::{evaluate, train, train_spsa_masked, Env, SpsaConfig, TrainConfig};
use qucad::framework::{Qucad, QucadConfig};

fn sparkline(series: &[f64]) -> String {
    let glyphs = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    series
        .iter()
        .map(|&a| glyphs[((a * 8.0).round() as usize).min(8)])
        .collect()
}

fn main() {
    let topo = Topology::ibm_belem();
    let history = FluctuatingHistory::generate(&topo, &HistoryConfig::belem_like(75, 21), 45);
    let data = Dataset::mnist4(96, 48, 21);
    let model = VqcModel::paper_model(4, 4, 16, 2);
    let noise = NoiseOptions {
        scale: 3.0,
        ..NoiseOptions::with_shots(1024, 21)
    };

    println!("training base model ...");
    let base = train(
        &model,
        &data.train,
        Env::Pure,
        &TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
        &model.init_weights(2),
    );

    let exec = NoisyExecutor::new(&model, &topo, noise);
    let online = history.online();

    println!("noise-aware training on day {} only ...", online[0].day);
    let env1 = Env::Noisy {
        exec: &exec,
        snapshot: &online[0],
    };
    let nat = train_spsa_masked(
        &model,
        &data.train,
        env1,
        &SpsaConfig {
            steps: 40,
            ..SpsaConfig::default()
        },
        &base.weights,
        &vec![true; model.n_weights()],
    );

    println!("building QuCAD ...");
    let config = QucadConfig {
        k: 4,
        max_offline_evals: 20,
        eval_samples: 32,
        ..QucadConfig::default()
    };
    let (mut qucad, _) = Qucad::build_offline(
        &model,
        &topo,
        noise,
        history.offline(),
        &data.train,
        &data.test,
        &base.weights,
        &config,
    );

    let mut nat_series = Vec::new();
    let mut qucad_series = Vec::new();
    for snap in online {
        let env = Env::Noisy {
            exec: &exec,
            snapshot: snap,
        };
        nat_series.push(evaluate(&model, env, &data.test, &nat.weights));
        let (wq, _, _) = qucad.online_day(snap);
        qucad_series.push(evaluate(&model, env, &data.test, &wq));
    }

    println!("\ndaily accuracy over {} days (█ = 100%):", online.len());
    println!("  day-1 noise-aware model : {}", sparkline(&nat_series));
    println!("  QuCAD                   : {}", sparkline(&qucad_series));
    let m = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    println!(
        "\nmeans: day-1 noise-aware {:.3} vs QuCAD {:.3}",
        m(&nat_series),
        m(&qucad_series)
    );
    let worst = nat_series.iter().copied().fold(1.0_f64, f64::min);
    println!(
        "worst day of the day-1 model: {worst:.3} — the paper's Observation 1 \
         (a noise-aware model can collapse when the noise drifts)."
    );
}

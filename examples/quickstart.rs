//! Quickstart: train a QNN, watch noise hurt it, compress it back to health.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use qnn::data::Dataset;
use qnn::executor::{NoiseOptions, NoisyExecutor};
use qnn::model::VqcModel;
use qnn::train::{evaluate, train, Env, TrainConfig};
use qucad::admm::{compress, AdmmConfig};
use qucad::levels::CompressionTable;

fn main() {
    // 1. A dataset and the paper's VQC model (4 qubits, 3 classes, Iris).
    let data = Dataset::iris(7);
    let model = VqcModel::paper_model(4, 3, 4, 2);
    println!(
        "model: {} qubits, {} weights",
        model.n_qubits(),
        model.n_weights()
    );

    // 2. Train noise-free.
    let cfg = TrainConfig {
        epochs: 10,
        ..TrainConfig::default()
    };
    let base = train(&model, &data.train, Env::Pure, &cfg, &model.init_weights(1));
    let clean_acc = evaluate(&model, Env::Pure, &data.test, &base.weights);
    println!("noise-free test accuracy: {clean_acc:.3}");

    // 3. A noisy day on ibm_belem (finite shots, calibration-driven noise).
    let topo = Topology::ibm_belem();
    let exec = NoisyExecutor::new(
        &model,
        &topo,
        NoiseOptions {
            scale: 3.0,
            ..NoiseOptions::with_shots(1024, 7)
        },
    );
    let bad_day = CalibrationSnapshot::uniform(&topo, 0, 1e-3, 3.5e-2, 0.04);
    let env = Env::Noisy {
        exec: &exec,
        snapshot: &bad_day,
    };
    let noisy_acc = evaluate(&model, env, &data.test, &base.weights);
    println!("accuracy under today's noise: {noisy_acc:.3}");

    // 4. Noise-aware compression (ADMM toward the breakpoint angles).
    let out = compress(
        &model,
        &exec,
        &data.train,
        &bad_day,
        &CompressionTable::standard(),
        &AdmmConfig::default(),
        &base.weights,
    );
    let compressed_acc = evaluate(&model, env, &data.test, &out.weights);
    println!(
        "compressed: {} of {} weights pinned to levels, accuracy {compressed_acc:.3}",
        out.n_compressed(),
        model.n_weights()
    );
    println!(
        "physical circuit length: {} -> {}",
        exec.circuit_length(&data.test[0].features, &base.weights),
        exec.circuit_length(&data.test[0].features, &out.weights),
    );
}

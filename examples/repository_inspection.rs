//! Inspecting the model repository: what the offline constructor built and
//! how the online manager matches calibrations against it.
//!
//! ```text
//! cargo run --release --example repository_inspection
//! ```

use calibration::history::{FluctuatingHistory, HistoryConfig};
use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use qnn::data::Dataset;
use qnn::executor::NoiseOptions;
use qnn::model::VqcModel;
use qnn::train::{train, Env, TrainConfig};
use qucad::framework::{Qucad, QucadConfig};
use qucad::levels::CompressionTable;
use qucad::repository::MatchOutcome;

fn main() {
    let topo = Topology::ibm_belem();
    let history = FluctuatingHistory::generate(&topo, &HistoryConfig::belem_like(70, 5), 50);
    let data = Dataset::iris(5);
    let model = VqcModel::paper_model(4, 3, 4, 2);
    let noise = NoiseOptions {
        scale: 3.0,
        ..NoiseOptions::with_shots(1024, 5)
    };

    let base = train(
        &model,
        &data.train,
        Env::Pure,
        &TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        },
        &model.init_weights(9),
    );

    let config = QucadConfig {
        k: 4,
        max_offline_evals: 20,
        eval_samples: 24,
        ..QucadConfig::default()
    };
    let (qucad, stats) = Qucad::build_offline(
        &model,
        &topo,
        noise,
        history.offline(),
        &data.train,
        &data.test,
        &base.weights,
        &config,
    );

    println!(
        "offline stage evaluated {} days; threshold th_w = {:.4}\n",
        stats.days_evaluated, stats.threshold
    );

    let table = CompressionTable::standard();
    println!("repository entries:");
    for (i, e) in qucad.repository().entries().iter().enumerate() {
        let at_level = e
            .weights
            .iter()
            .filter(|&&w| table.nearest(w).1 < 1e-9)
            .count();
        println!(
            "  entry {i}: cluster mean accuracy {:.3}, {}/{} weights at \
             compression levels, centroid mean CX error {:.4}",
            e.mean_accuracy.unwrap_or(f64::NAN),
            at_level,
            e.weights.len(),
            CalibrationSnapshot::from_feature_vector(&topo, 0, &e.centroid).mean_cnot_error(),
        );
    }

    println!("\nmatching the next 10 online days:");
    for snap in history.online().iter().take(10) {
        match qucad.repository().match_snapshot(snap) {
            MatchOutcome::Hit { index, distance } => {
                println!(
                    "  day {:>3}: HIT entry {index} at distance {distance:.4}",
                    snap.day
                );
            }
            MatchOutcome::Miss { nearest_distance } => println!(
                "  day {:>3}: MISS (nearest {nearest_distance:.4} > th_w) — would compress",
                snap.day
            ),
            MatchOutcome::Invalid {
                index,
                predicted_accuracy,
            } => println!(
                "  day {:>3}: INVALID entry {index} (predicted accuracy {predicted_accuracy:.2})",
                snap.day
            ),
        }
    }
}

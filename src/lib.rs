//! # qucad-suite — umbrella for the QuCAD reproduction workspace
//!
//! Re-exports the workspace crates so the examples and integration tests
//! under the repository root can address the whole stack through one
//! dependency. See the individual crates for the real APIs:
//!
//! - [`quasim`] — state-vector / density-matrix simulators and noise
//!   channels;
//! - [`calibration`] — topologies, calibration snapshots, fluctuating-noise
//!   histories;
//! - [`transpile`] — circuit IR, routing, native-gate expansion;
//! - [`qnn`] — models, datasets, training, noisy execution;
//! - [`qucad`] — the compression-aided framework itself.

pub use calibration;
pub use qnn;
pub use quasim;
pub use qucad;
pub use transpile;

//! Cross-backend consistency harness: the Monte-Carlo trajectory backend
//! must statistically agree with the bit-exact density-matrix reference.
//!
//! Trajectories are stochastic, so the correctness story is itself
//! statistical — but **not flaky**: every check runs under a fixed seed
//! (hence is deterministic), and the tolerance is *derived* from the
//! trajectory batch's own shot variance (`k · SE` with the standard error
//! the engine reports), never hand-tuned.

use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use qnn::executor::{parallel, pure_z_scores, NoiseOptions, NoisyExecutor, SimBackend};
use qnn::model::VqcModel;

/// The three Table I models at their paper shapes (Quick scale uses these
/// exact circuits; only day/sample counts shrink).
fn paper_models() -> Vec<VqcModel> {
    vec![
        VqcModel::paper_model(4, 4, 16, 2), // 4-class MNIST
        VqcModel::paper_model(4, 3, 4, 3),  // Iris
        VqcModel::paper_model(4, 2, 4, 2),  // Seismic
    ]
}

fn features_for(model: &VqcModel) -> Vec<f64> {
    (0..model.n_features())
        .map(|i| 0.15 + 0.2 * i as f64)
        .collect()
}

/// Exact-channel options (no readout, no shot sampling) so the only
/// difference between backends is the trajectory unraveling itself.
fn exact_options(backend: SimBackend, trajectories: u32) -> NoiseOptions {
    NoiseOptions {
        scale: 3.0,
        readout: false,
        shots: None,
        shot_seed: 9,
        backend,
        trajectories,
    }
}

/// Trajectory z-scores agree with the exact density-matrix z-scores within
/// a confidence bound computed from the trajectory batch's own standard
/// error: `|z_t − z_d| ≤ 6 · SE_z + ε`. A 6σ bound on a seeded run either
/// holds forever or flags a genuine estimator bug — there is no flaky
/// middle ground.
#[test]
fn trajectory_zscores_within_derived_confidence_of_density() {
    let topo = Topology::ibm_belem();
    let snap = CalibrationSnapshot::uniform(&topo, 0, 3e-4, 1.2e-2, 0.02);
    for model in paper_models() {
        let features = features_for(&model);
        let weights = model.init_weights(11);

        let density = NoisyExecutor::new(&model, &topo, exact_options(SimBackend::Density, 0));
        let z_d = density.z_scores_seeded(&features, &weights, &snap, 0);

        let trajectory =
            NoisyExecutor::new(&model, &topo, exact_options(SimBackend::Trajectory, 800));
        let est = trajectory.trajectory_estimate(&features, &weights, &snap, 0);
        let z_t = est.z_scores();
        let se_z = est.z_std_err();

        // The public z_scores path must be exactly the estimate's means
        // (readout and shot noise are disabled here).
        let z_api = trajectory.z_scores_seeded(&features, &weights, &snap, 0);
        for (a, b) in z_api.iter().zip(z_t.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        for (c, ((t, d), se)) in z_t.iter().zip(z_d.iter()).zip(se_z.iter()).enumerate() {
            let bound = 6.0 * se + 1e-9;
            assert!(
                (t - d).abs() <= bound,
                "model {}q x{}: class {c} trajectory z = {t} vs density z = {d} \
                 exceeds derived bound {bound} (SE = {se})",
                model.n_qubits(),
                model.repeats(),
            );
            // The bound itself must be meaningful: with noise present and
            // 800 trajectories the SE is small but non-degenerate.
            assert!(*se > 0.0 && *se < 0.1, "implausible standard error {se}");
        }
    }
}

/// Seeded trajectory evaluation is pure: identical inputs replay identical
/// bits, and the batch evaluator returns the same bits at 1, 4, and 16
/// threads (the same contract the density backend holds).
#[test]
fn trajectory_batch_is_bit_identical_across_threads() {
    let topo = Topology::ibm_belem();
    let model = VqcModel::paper_model(4, 3, 4, 3);
    let exec = NoisyExecutor::new(
        &model,
        &topo,
        NoiseOptions {
            scale: 3.0,
            backend: SimBackend::Trajectory,
            trajectories: 64,
            ..NoiseOptions::with_shots(1024, 42)
        },
    );
    let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-3, 3e-2, 0.03);
    let weights = model.init_weights(3);
    let samples: Vec<qnn::data::Sample> = (0..6)
        .map(|i| qnn::data::Sample {
            features: (0..4).map(|f| 0.1 * (i + f) as f64).collect(),
            label: i % 3,
        })
        .collect();

    let reference = parallel::batch_z_scores(&exec, &samples, &weights, &snap, 5, 1);
    for threads in [4usize, 16] {
        let got = parallel::batch_z_scores(&exec, &samples, &weights, &snap, 5, threads);
        for (i, (a, b)) in reference.iter().zip(got.iter()).enumerate() {
            for (j, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "sample {i} score {j} differs at {threads} threads: {x} vs {y}"
                );
            }
        }
    }
}

/// At zero calibration noise no stochastic atom is emitted, so a single
/// trajectory is exact and both backends collapse onto the pure path.
#[test]
fn both_backends_match_pure_at_zero_noise() {
    let topo = Topology::ibm_belem();
    let zero = CalibrationSnapshot::uniform(&topo, 0, 0.0, 0.0, 0.0);
    for model in paper_models() {
        let features = features_for(&model);
        let weights = model.init_weights(7);
        let z_pure = pure_z_scores(&model, &features, &weights);
        for backend in [SimBackend::Density, SimBackend::Trajectory] {
            let exec = NoisyExecutor::new(&model, &topo, exact_options(backend, 4));
            let z = exec.z_scores_seeded(&features, &weights, &zero, 0);
            for (a, b) in z.iter().zip(z_pure.iter()) {
                assert!(
                    (a - b).abs() < 1e-8,
                    "{} backend deviates from pure at zero noise: {a} vs {b}",
                    backend.name()
                );
            }
        }
    }
}

/// More trajectories must tighten the estimate toward the exact value
/// (variance-reduction sanity: the error bound shrinks like 1/√N).
#[test]
fn trajectory_error_bound_tightens_with_budget() {
    let topo = Topology::ibm_belem();
    let model = VqcModel::paper_model(4, 2, 4, 2);
    let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-3, 3e-2, 0.0);
    let features = features_for(&model);
    let weights = model.init_weights(5);

    let se_at = |n: u32| -> f64 {
        let exec = NoisyExecutor::new(&model, &topo, exact_options(SimBackend::Trajectory, n));
        let est = exec.trajectory_estimate(&features, &weights, &snap, 0);
        est.std_err.iter().sum::<f64>() / est.std_err.len() as f64
    };
    let coarse = se_at(50);
    let fine = se_at(3200);
    assert!(
        fine < coarse / 4.0,
        "64x the trajectories should cut SE by ~8x: {coarse} -> {fine}"
    );
}

/// The engine selected through `QUCAD_BACKEND` (the CI matrix axis) runs
/// every paper model end to end with sane outputs — under the trajectory
/// matrix leg this is the stochastic engine, under density the exact one.
#[test]
fn env_selected_backend_evaluates_all_paper_models() {
    let backend = SimBackend::from_env();
    let topo = Topology::ibm_belem();
    let snap = CalibrationSnapshot::uniform(&topo, 0, 1e-3, 2e-2, 0.02);
    for model in paper_models() {
        let exec = NoisyExecutor::new(
            &model,
            &topo,
            NoiseOptions {
                scale: 3.0,
                backend,
                trajectories: 32,
                ..NoiseOptions::with_shots(1024, 1)
            },
        );
        let z = exec.z_scores_seeded(&features_for(&model), &model.init_weights(1), &snap, 0);
        assert_eq!(z.len(), model.n_classes());
        assert!(z.iter().all(|v| v.is_finite() && v.abs() <= 1.0 + 1e-9));
    }
}

/// The full QuCAD pipeline — offline constructor (profiling, clustering,
/// per-centroid compression) and online manager — driven end to end on
/// the engine selected by `QUCAD_BACKEND`, so the trajectory leg of the
/// CI matrix genuinely exercises `build_offline`/`online_day` through the
/// stochastic engine (the other root integration tests pin density).
#[test]
fn env_selected_backend_runs_offline_online_pipeline() {
    use calibration::history::{FluctuatingHistory, HistoryConfig};
    use qucad::admm::AdmmConfig;
    use qucad::framework::{Qucad, QucadConfig};

    let topo = Topology::ibm_belem();
    let model = VqcModel::paper_model(4, 3, 4, 1);
    let history = FluctuatingHistory::generate(&topo, &HistoryConfig::belem_like(16, 5), 12);
    let data = qnn::data::Dataset::iris(3).truncated(16, 12);
    let noise = NoiseOptions {
        scale: 3.0,
        backend: SimBackend::from_env(),
        trajectories: 16, // small budget keeps the trajectory leg fast
        ..NoiseOptions::with_shots(1024, 3)
    };
    let config = QucadConfig {
        k: 2,
        max_offline_evals: 4,
        eval_samples: 8,
        admm: AdmmConfig {
            rounds: 2,
            theta_steps: 1,
            batch_size: 6,
            finetune_steps: 0,
            ..AdmmConfig::default()
        },
        ..QucadConfig::default()
    };
    let base = model.init_weights(1);
    let (mut qucad, stats) = Qucad::build_offline(
        &model,
        &topo,
        noise,
        history.offline(),
        &data.train,
        &data.test,
        &base,
        &config,
    );
    assert_eq!(stats.n_entries, 2);
    assert!(stats.n_evals > 0);
    for snap in history.online().iter().take(3) {
        let (weights, _, _) = qucad.online_day(snap);
        assert_eq!(weights.len(), model.n_weights());
    }
}

/// The 16-qubit `ibm_guadalupe` register is the trajectory backend's
/// exclusive territory: the density backend refuses it with a clear
/// message, the trajectory backend evaluates it.
#[test]
fn guadalupe_runs_on_trajectory_and_is_refused_by_density() {
    let topo = Topology::ibm_guadalupe();
    let model = VqcModel::paper_model(topo.n_qubits(), 4, 16, 1);
    let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-4, 1e-2, 0.02);
    let features: Vec<f64> = (0..16).map(|i| 0.1 * i as f64).collect();
    let weights = model.init_weights(2);

    let traj = NoisyExecutor::new(&model, &topo, exact_options(SimBackend::Trajectory, 8));
    let z = traj.z_scores_seeded(&features, &weights, &snap, 0);
    assert_eq!(z.len(), 4);
    assert!(z.iter().all(|v| v.is_finite() && v.abs() <= 1.0 + 1e-9));

    let dens = NoisyExecutor::new(&model, &topo, exact_options(SimBackend::Density, 0));
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dens.z_scores_seeded(&features, &weights, &snap, 0)
    }))
    .expect_err("density backend must refuse a 16-qubit register");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".into());
    assert!(
        msg.contains("trajectory"),
        "refusal must point at the trajectory backend, got: {msg}"
    );
}

//! End-to-end integration tests spanning every crate: data → model →
//! training → routing → noisy execution → compression → repository →
//! online management.

use calibration::history::{FluctuatingHistory, HistoryConfig};
use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use qnn::data::Dataset;
use qnn::executor::{NoiseOptions, NoisyExecutor};
use qnn::model::VqcModel;
use qnn::train::{evaluate, train, Env, TrainConfig};
use qucad::admm::{compress, AdmmConfig};
use qucad::framework::{run_method, Method, OnlineDecision, Qucad, QucadConfig, RunContext};
use qucad::levels::CompressionTable;

fn quick_admm() -> AdmmConfig {
    AdmmConfig {
        rounds: 3,
        theta_steps: 1,
        batch_size: 8,
        finetune_pure_epochs: 1,
        finetune_steps: 8,
        ..AdmmConfig::default()
    }
}

fn quick_qucad_config() -> QucadConfig {
    QucadConfig {
        k: 3,
        admm: quick_admm(),
        max_offline_evals: 8,
        eval_samples: 16,
        ..QucadConfig::default()
    }
}

#[test]
fn full_pipeline_iris_on_belem() {
    let topo = Topology::ibm_belem();
    let history = FluctuatingHistory::generate(&topo, &HistoryConfig::belem_like(26, 3), 18);
    let data = Dataset::iris(3).truncated(32, 24);
    let model = VqcModel::paper_model(4, 3, 4, 1);
    let noise = NoiseOptions {
        scale: 3.0,
        ..NoiseOptions::with_shots(1024, 3)
    };

    let base = train(
        &model,
        &data.train,
        Env::Pure,
        &TrainConfig {
            epochs: 4,
            batch_size: 8,
            ..TrainConfig::default()
        },
        &model.init_weights(1),
    );
    assert!(base.n_evals > 0);

    let (mut qucad, stats) = Qucad::build_offline(
        &model,
        &topo,
        noise,
        history.offline(),
        &data.train,
        &data.test,
        &base.weights,
        &quick_qucad_config(),
    );
    assert_eq!(stats.n_entries, 3);

    let exec = qucad.executor().clone();
    for snap in history.online() {
        let (weights, _, _) = qucad.online_day(snap);
        let env = Env::Noisy {
            exec: &exec,
            snapshot: snap,
        };
        let acc = evaluate(&model, env, &data.test, &weights);
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(weights.len(), model.n_weights());
    }
    assert!(qucad.repository().len() >= 3);
}

#[test]
fn compression_reduces_length_on_every_dataset() {
    let topo = Topology::ibm_belem();
    let snap = CalibrationSnapshot::uniform(&topo, 0, 1e-3, 4e-2, 0.03);
    for (data, model) in [
        (
            Dataset::mnist4(24, 8, 1),
            VqcModel::paper_model(4, 4, 16, 1),
        ),
        (
            Dataset::iris(1).truncated(24, 8),
            VqcModel::paper_model(4, 3, 4, 1),
        ),
        (
            Dataset::seismic(24, 8, 1),
            VqcModel::paper_model(4, 2, 4, 1),
        ),
    ] {
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
        let base = model.init_weights(5);
        let out = compress(
            &model,
            &exec,
            &data.train,
            &snap,
            &CompressionTable::standard(),
            &quick_admm(),
            &base,
        );
        let f = &data.train[0].features;
        assert!(
            exec.circuit_length(f, &out.weights) <= exec.circuit_length(f, &base),
            "{}: compression lengthened the circuit",
            data.name
        );
    }
}

#[test]
fn method_runner_produces_complete_records() {
    let topo = Topology::ibm_belem();
    let history = FluctuatingHistory::generate(&topo, &HistoryConfig::belem_like(16, 9), 10);
    let data = Dataset::seismic(24, 16, 9);
    let model = VqcModel::paper_model(4, 2, 4, 1);
    let base = train(
        &model,
        &data.train,
        Env::Pure,
        &TrainConfig {
            epochs: 3,
            batch_size: 8,
            ..TrainConfig::default()
        },
        &model.init_weights(2),
    );
    let config = quick_qucad_config();
    let ctx = RunContext {
        model: &model,
        topology: &topo,
        noise: NoiseOptions {
            scale: 3.0,
            ..NoiseOptions::with_shots(1024, 9)
        },
        offline: history.offline(),
        online: history.online(),
        train_set: &data.train,
        test_set: &data.test,
        base_weights: &base.weights,
        config: &config,
        nat_config: qnn::train::SpsaConfig {
            steps: 5,
            batch_size: 6,
            ..Default::default()
        },
    };
    for method in Method::table1() {
        let run = run_method(method, &ctx);
        assert_eq!(run.records.len(), history.online().len(), "{:?}", method);
        for r in &run.records {
            assert!((0.0..=1.0).contains(&r.accuracy));
        }
        // Static methods must not spend online training evals.
        if matches!(
            method,
            Method::Baseline | Method::NoiseAwareOnce | Method::OneTimeCompression
        ) {
            assert_eq!(run.online_evals(), 0, "{:?}", method);
        }
    }
}

#[test]
fn qucad_reuses_entries_under_calm_noise() {
    // With a nearly flat history every online day must match the offline
    // clusters: zero online compressions.
    let topo = Topology::ibm_belem();
    let history = FluctuatingHistory::generate(&topo, &HistoryConfig::calm(24, 4), 16);
    let data = Dataset::iris(4).truncated(24, 16);
    let model = VqcModel::paper_model(4, 3, 4, 1);
    let base = model.init_weights(3);
    let (mut qucad, _) = Qucad::build_offline(
        &model,
        &topo,
        NoiseOptions::default(),
        history.offline(),
        &data.train,
        &data.test,
        &base,
        &quick_qucad_config(),
    );
    for snap in history.online() {
        let (_, decision, cost) = qucad.online_day(snap);
        assert!(
            matches!(decision, OnlineDecision::Reused { .. }),
            "calm noise should always hit the repository, got {decision:?}"
        );
        assert_eq!(cost, 0);
    }
}

//! Golden-fixture regression test: the density backend's Quick-scale
//! Table I z-scores are pinned **bit-exactly** against a committed JSON
//! fixture, so silent numeric drift — a reordered reduction, a "harmless"
//! kernel tweak, a changed default — fails loudly instead of skewing every
//! table by a little.
//!
//! The fixture serialises each score as both its decimal value (for
//! humans) and its raw IEEE-754 bit pattern (for the comparison), and the
//! assertion compares the *rendered* fixture strings, so any bit change
//! anywhere in the pipeline (training, transpilation, fused simulation,
//! shot noise) is caught.
//!
//! Intentional numeric changes regenerate the fixture with
//! `QUCAD_GOLDEN_REGEN=1 cargo test --test golden_zscores` — review the
//! diff and commit it alongside the change that caused it.

use qnn::executor::{NoiseOptions, NoisyExecutor, SimBackend};
use qucad_bench::{Experiment, Scale, Task};

const SAMPLES_PER_TASK: usize = 4;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/table1_quick_zscores.json")
}

fn task_slug(task: Task) -> &'static str {
    match task {
        Task::Mnist4 => "mnist4",
        Task::Iris => "iris",
        Task::Seismic => "seismic",
    }
}

/// Renders the fixture: for every Table I task at Quick scale (seed 42,
/// the table1_main default), the density-backend z-scores of the trained
/// base model on the first online day for the first few test samples.
fn render_fixture() -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"description\": \"Quick-scale Table I z-scores, density backend, seed 42; bits are IEEE-754 f64 patterns and are compared exactly\",\n");
    out.push_str("  \"tasks\": [\n");
    let tasks = Task::table1();
    for (ti, &task) in tasks.iter().enumerate() {
        let exp = Experiment::prepare(task, Scale::Quick, 42);
        // Pin the engine: this fixture is the *density* reference
        // regardless of any QUCAD_BACKEND override in the environment.
        let exec = NoisyExecutor::new(
            &exp.model,
            &exp.topology,
            NoiseOptions {
                backend: SimBackend::Density,
                ..exp.noise
            },
        );
        let snap = &exp.history.online()[0];
        out.push_str(&format!(
            "    {{\n      \"task\": \"{}\",\n      \"samples\": [\n",
            task_slug(task)
        ));
        let n = exp.dataset.test.len().min(SAMPLES_PER_TASK);
        for (si, sample) in exp.dataset.test.iter().take(n).enumerate() {
            let z = exec.z_scores_seeded(&sample.features, &exp.base_weights, snap, si as u64);
            out.push_str(&format!("        {{\"sample\": {si}, \"zscores\": ["));
            for (zi, v) in z.iter().enumerate() {
                if zi > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"value\": {v:.17e}, \"bits\": \"0x{:016x}\"}}",
                    v.to_bits()
                ));
            }
            out.push_str("]}");
            out.push_str(if si + 1 < n { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n    }");
        out.push_str(if ti + 1 < tasks.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[test]
fn table1_quick_density_zscores_are_bit_exact() {
    let rendered = render_fixture();
    let path = golden_path();
    // qucad-lint: allow(env-read) — audited entry point: golden-file regeneration switch
    if std::env::var("QUCAD_GOLDEN_REGEN").is_ok_and(|v| !v.trim().is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, &rendered).expect("write golden fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             QUCAD_GOLDEN_REGEN=1 cargo test --test golden_zscores",
            path.display()
        )
    });
    assert!(
        committed == rendered,
        "density-backend z-scores drifted from the committed golden fixture \
         {}.\nIf the numeric change is intentional, regenerate with \
         QUCAD_GOLDEN_REGEN=1 cargo test --test golden_zscores and commit the \
         diff; otherwise a refactor silently changed simulation bits.",
        path.display()
    );
}

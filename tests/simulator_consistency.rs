//! Cross-crate consistency: the noisy executor at zero noise must agree
//! with the pure path on the paper's actual models, and physical-length
//! accounting must be coherent with what the executor simulates.

use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use qnn::executor::{pure_z_scores, NoiseOptions, NoisyExecutor};
use qnn::loss::predict;
use qnn::model::VqcModel;
use std::f64::consts::PI;

#[test]
fn zero_noise_executor_matches_pure_for_all_paper_models() {
    let topo = Topology::ibm_belem();
    let zero = CalibrationSnapshot::uniform(&topo, 0, 0.0, 0.0, 0.0);
    for (model, nf) in [
        (VqcModel::paper_model(4, 4, 16, 2), 16usize),
        (VqcModel::paper_model(4, 3, 4, 3), 4),
        (VqcModel::paper_model(4, 2, 4, 2), 4),
    ] {
        let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
        let weights = model.init_weights(7);
        let features: Vec<f64> = (0..nf).map(|i| 0.1 + 0.15 * i as f64).collect();
        let zn = exec.z_scores(&features, &weights, &zero);
        let zp = pure_z_scores(&model, &features, &weights);
        for (a, b) in zn.iter().zip(zp.iter()) {
            assert!((a - b).abs() < 1e-8, "zero-noise mismatch: {a} vs {b}");
        }
        assert_eq!(predict(&zn), predict(&zp));
    }
}

#[test]
fn jakarta_models_run_end_to_end() {
    let topo = Topology::ibm_jakarta();
    let model = VqcModel::paper_model(4, 2, 4, 2);
    let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
    let snap = CalibrationSnapshot::uniform(&topo, 0, 3e-4, 1e-2, 0.02);
    let z = exec.z_scores(&[0.3, 0.9, 1.4, 2.2], &model.init_weights(1), &snap);
    assert_eq!(z.len(), 2);
    assert!(z.iter().all(|v| v.is_finite() && v.abs() <= 1.0 + 1e-9));
}

#[test]
fn circuit_length_monotone_in_compressed_weight_count() {
    let topo = Topology::ibm_belem();
    let model = VqcModel::paper_model(4, 4, 16, 2);
    let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
    let features = vec![0.4; 16];
    let generic = vec![1.234; model.n_weights()];
    let mut lengths = Vec::new();
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut w = generic.clone();
        let k = (model.n_weights() as f64 * frac) as usize;
        for wi in w.iter_mut().take(k) {
            *wi = 0.0;
        }
        lengths.push(exec.circuit_length(&features, &w));
    }
    for pair in lengths.windows(2) {
        assert!(
            pair[1] <= pair[0],
            "length must shrink as more weights hit 0: {lengths:?}"
        );
    }
}

#[test]
fn shot_noise_perturbs_but_preserves_scale() {
    let topo = Topology::ibm_belem();
    let model = VqcModel::paper_model(4, 2, 4, 1);
    let snap = CalibrationSnapshot::uniform(&topo, 0, 2e-4, 8e-3, 0.01);
    let weights = model.init_weights(4);
    let features = [0.5, 1.0, 1.5, 2.0];

    let exact = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
    let z_exact = exact.z_scores(&features, &weights, &snap);

    let shot = NoisyExecutor::new(&model, &topo, NoiseOptions::with_shots(1024, 5));
    // Average many shot evaluations → converges to the exact value.
    let n = 200;
    let mut mean = vec![0.0; z_exact.len()];
    for _ in 0..n {
        for (m, v) in mean
            .iter_mut()
            .zip(shot.z_scores(&features, &weights, &snap))
        {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    for (a, b) in mean.iter().zip(z_exact.iter()) {
        assert!(
            (a - b).abs() < 0.02,
            "shot-averaged score should match exact: {a} vs {b}"
        );
    }
}

#[test]
fn compression_levels_are_the_cheap_angles() {
    // The four standard levels must be exactly the angles where a CRY costs
    // least — the physical basis of the whole framework.
    let topo = Topology::ibm_belem();
    let model = VqcModel::paper_model(2, 2, 2, 1);
    let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::default());
    let features = [0.0, 0.0];
    let probe = |angle: f64| {
        let mut w = vec![0.0; model.n_weights()];
        // Weight layout for 2 qubits: idx 0..2 = RY layer, idx 2..4 = CRY
        // ring — probe the first CRY.
        w[2] = angle;
        exec.circuit_length(&features, &w)
    };
    let level_len = probe(PI);
    let generic_len = probe(PI - 0.4);
    assert!(level_len < generic_len);
    assert!(probe(0.0) < level_len);
}

//! Training-path bit-identity harness: the batched probe engine behind
//! `train_masked` / `train_spsa_masked` / `param_shift_gradient_batched`
//! must reproduce the retained sequential closure references **bit for
//! bit** — across random angle mixes (including probes that cross
//! identity/quarter-turn boundaries and therefore re-key the program
//! cache), calibration days, both device topologies, both simulation
//! backends, and every worker-thread count.
//!
//! The CI integration matrix re-runs this file under `QUCAD_BACKEND`,
//! `QUCAD_THREADS`, `QUCAD_TRAJ_BATCH`, and `QUCAD_FORCE_SCALAR`
//! combinations, which extends the coverage to the env-selected backend
//! and every trajectory panel width without any env mutation here.

use calibration::snapshot::CalibrationSnapshot;
use calibration::topology::Topology;
use proptest::prelude::*;
use qnn::executor::{parallel, NoiseOptions, NoisyExecutor, ProbeBatch, SimBackend};
use qnn::grad::{param_shift_gradient, param_shift_gradient_batched};
use qnn::model::VqcModel;
use qnn::train::{
    train_masked_sequential, train_masked_with_threads, train_spsa_masked_sequential,
    train_spsa_masked_with_threads, Env, SpsaConfig, TrainConfig,
};
use qnn::Dataset;
use std::cell::Cell;

const THREAD_COUNTS: [usize; 3] = [1, 4, 16];

/// Angle vectors mixing generic values with the exact compression levels
/// (0, π/2, π, 3π/2) whose angle classes drive the structure key — a
/// `±π/2` parameter-shift probe of a level-valued weight crosses into a
/// different key and must be compiled through the cache-miss path.
fn arb_angles(len: usize) -> impl Strategy<Value = Vec<f64>> {
    use std::f64::consts::{FRAC_PI_2, PI, TAU};
    proptest::collection::vec(
        prop_oneof![
            Just(0.0),
            Just(FRAC_PI_2),
            Just(PI),
            Just(3.0 * FRAC_PI_2),
            Just(TAU),
            -6.0f64..6.0,
        ],
        len,
    )
}

fn arb_day() -> impl Strategy<Value = (u64, f64, f64, f64)> {
    (0u64..1000, 0.0f64..4e-3, 0.0f64..5e-2, 0.0f64..0.05)
}

fn topologies() -> Vec<Topology> {
    vec![Topology::ibm_belem(), Topology::ibm_jakarta()]
}

fn backends() -> Vec<(SimBackend, u32)> {
    vec![(SimBackend::Density, 0), (SimBackend::Trajectory, 16)]
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batched parameter-shift gradients equal the sequential closure
    /// oracle bit-exactly: random angles (identity-crossing shifts
    /// included) × days × {belem, jakarta} × {density, trajectory} ×
    /// threads {1, 4, 16}.
    #[test]
    fn batched_param_shift_matches_closure_oracle(
        features in arb_angles(4),
        weights in arb_angles(40),
        day in arb_day(),
    ) {
        let (day_seed, e1, e2, er) = day;
        for topo in topologies() {
            for (backend, trajectories) in backends() {
                let model = VqcModel::paper_model(4, 3, 4, 1);
                let weights = &weights[..model.n_weights()];
                let options = NoiseOptions {
                    backend,
                    trajectories,
                    ..NoiseOptions::with_shots(256, 13)
                };
                let exec = NoisyExecutor::new(&model, &topo, options);
                let snap =
                    CalibrationSnapshot::uniform(&topo, day_seed as usize, e1, e2, er);
                let obj = |z: &[f64]| qnn::loss::cross_entropy(z, 1);
                let stream_for =
                    |i: usize, plus: bool| 1000 * day_seed + 2 * i as u64 + u64::from(!plus);

                // The closure oracle evaluates probes in the fixed order
                // (+0, −0, +1, −1, …); a call counter recovers each call's
                // (weight, sign) and with it the positional stream.
                let calls = Cell::new(0usize);
                let oracle = |w: &[f64]| {
                    let k = calls.get();
                    calls.set(k + 1);
                    let z = exec.z_scores_seeded(
                        &features, w, &snap, stream_for(k / 2, k.is_multiple_of(2)));
                    obj(&z)
                };
                let want = param_shift_gradient(&oracle, weights);

                for threads in THREAD_COUNTS {
                    let got = param_shift_gradient_batched(
                        &exec, &snap, &features, weights, obj, stream_for, threads,
                    );
                    for (i, (a, b)) in got.iter().zip(want.iter()).enumerate() {
                        prop_assert!(
                            a.to_bits() == b.to_bits(),
                            "grad[{i}] {a} vs {b} (threads={threads}, backend={backend:?})"
                        );
                    }
                }
            }
        }
    }

    /// `evaluate_probes` output element `i` equals an individual
    /// `z_scores_seeded` call for probe `i`, for any thread count and
    /// probe mix.
    #[test]
    fn probe_batch_matches_individual_seeded_evaluations(
        features in arb_angles(4),
        probes in proptest::collection::vec((arb_angles(40), 0u64..1_000_000), 1..8),
        day in arb_day(),
    ) {
        let (day_seed, e1, e2, er) = day;
        for (backend, trajectories) in backends() {
            let model = VqcModel::paper_model(4, 3, 4, 1);
            let topo = Topology::ibm_belem();
            let options = NoiseOptions {
                backend,
                trajectories,
                ..NoiseOptions::with_shots(512, 3)
            };
            let exec = NoisyExecutor::new(&model, &topo, options);
            let snap = CalibrationSnapshot::uniform(&topo, day_seed as usize, e1, e2, er);

            let trimmed: Vec<(Vec<f64>, u64)> = probes
                .iter()
                .map(|(w, s)| (w[..model.n_weights()].to_vec(), *s))
                .collect();
            let mut batch = ProbeBatch::with_capacity(trimmed.len());
            for (w, stream) in &trimmed {
                batch.push(&features, w, *stream);
            }
            for threads in THREAD_COUNTS {
                let got = exec.evaluate_probes(&snap, &batch, threads);
                prop_assert_eq!(got.len(), trimmed.len());
                for (i, (w, stream)) in trimmed.iter().enumerate() {
                    let want = exec.z_scores_seeded(&features, w, &snap, *stream);
                    for (a, b) in got[i].iter().zip(want.iter()) {
                        prop_assert!(
                            a.to_bits() == b.to_bits(),
                            "probe {i} {a} vs {b} (threads={threads}, backend={backend:?})"
                        );
                    }
                }
            }
        }
    }
}

/// Parameter-shift probes of level-valued weights change the circuit's
/// angle-class structure: the batch must split those probes into their own
/// cache groups (taking the compile/miss path) and still match the oracle.
#[test]
fn identity_crossing_shifts_go_through_cache_miss_path() {
    let model = VqcModel::paper_model(4, 3, 4, 1);
    let topo = Topology::ibm_belem();
    let exec = NoisyExecutor::new(&model, &topo, NoiseOptions::with_shots(256, 21));
    let snap = CalibrationSnapshot::uniform(&topo, 0, 3e-4, 8e-3, 0.02);
    let features = [0.3, 0.8, 1.4, 2.1];
    // All-zero weights: every +π/2 probe promotes one rotation from the
    // identity class to the quarter-turn class (and −π/2 to three
    // quarters), so no probe shares the base structure.
    let weights = vec![0.0; model.n_weights()];
    let obj = |z: &[f64]| qnn::loss::cross_entropy(z, 0);
    let stream_for = |i: usize, plus: bool| 7 + 2 * i as u64 + u64::from(!plus);

    let calls = Cell::new(0usize);
    let oracle = |w: &[f64]| {
        let k = calls.get();
        calls.set(k + 1);
        obj(&exec.z_scores_seeded(&features, w, &snap, stream_for(k / 2, k.is_multiple_of(2))))
    };
    let want = param_shift_gradient(&oracle, &weights);

    let fresh = NoisyExecutor::new(&model, &topo, NoiseOptions::with_shots(256, 21));
    let got = param_shift_gradient_batched(&fresh, &snap, &features, &weights, obj, stream_for, 1);
    assert_bits_eq(&got, &want, "identity-crossing gradient");
    let stats = fresh.cache_stats();
    assert!(
        stats.misses >= 2,
        "level-crossing probes must compile distinct structures, saw {stats:?}"
    );
}

/// End-to-end trained parameters from the batched engines are bit-identical
/// to the sequential references, in the env-selected backend (the CI
/// integration matrix varies `QUCAD_BACKEND` / panel widths over this).
#[test]
fn trained_parameters_bit_identical_to_sequential_reference() {
    let data = Dataset::iris(5).truncated(12, 4);
    let model = VqcModel::paper_model(4, 3, 4, 1);
    let topo = Topology::ibm_belem();
    let options = NoiseOptions {
        backend: SimBackend::from_env(),
        trajectories: 16,
        ..NoiseOptions::with_shots(128, 19)
    };
    let exec = NoisyExecutor::new(&model, &topo, options);
    let snap = CalibrationSnapshot::uniform(&topo, 1, 3e-4, 8e-3, 0.02);
    let init = model.init_weights(6);
    let trainable = vec![true; model.n_weights()];

    for env in [
        Env::Pure,
        Env::Noisy {
            exec: &exec,
            snapshot: &snap,
        },
    ] {
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 4,
            lr: 0.1,
            seed: 3,
            grad_step: 1e-3,
        };
        let reference = train_masked_sequential(&model, &data.train, env, &cfg, &init, &trainable);
        for threads in THREAD_COUNTS {
            let batched = train_masked_with_threads(
                &model,
                &data.train,
                env,
                &cfg,
                &init,
                &trainable,
                threads,
            );
            assert_bits_eq(
                &batched.weights,
                &reference.weights,
                &format!("fd weights (threads={threads})"),
            );
            assert_eq!(batched.n_evals, reference.n_evals);
        }

        let spsa_cfg = SpsaConfig {
            steps: 5,
            batch_size: 4,
            seed: 8,
            ..SpsaConfig::default()
        };
        let spsa_reference =
            train_spsa_masked_sequential(&model, &data.train, env, &spsa_cfg, &init, &trainable);
        for threads in THREAD_COUNTS {
            let batched = train_spsa_masked_with_threads(
                &model,
                &data.train,
                env,
                &spsa_cfg,
                &init,
                &trainable,
                threads,
            );
            assert_bits_eq(
                &batched.weights,
                &spsa_reference.weights,
                &format!("spsa weights (threads={threads})"),
            );
            assert_eq!(batched.n_evals, spsa_reference.n_evals);
        }
    }
}

/// Program-cache counter totals through a training run: every clone of an
/// executor shares one cache and one set of counters, so the totals read
/// through any clone agree, are deterministic at one thread, and never
/// lose the lookups performed by the fan-out clones (the pre-shared-cache
/// design double-counted per clone and dropped clone totals on drop).
#[test]
fn training_cache_totals_aggregate_across_clones() {
    let data = Dataset::iris(5).truncated(8, 4);
    let model = VqcModel::paper_model(4, 3, 4, 1);
    let topo = Topology::ibm_belem();
    let options = NoiseOptions::with_shots(128, 19);
    let snap = CalibrationSnapshot::uniform(&topo, 1, 3e-4, 8e-3, 0.02);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 4,
        lr: 0.1,
        seed: 3,
        grad_step: 1e-3,
    };
    let trainable = vec![true; model.n_weights()];
    let init = model.init_weights(6);

    let run = |threads: usize| {
        let exec = NoisyExecutor::new(&model, &topo, options);
        let clone = exec.clone();
        let env = Env::Noisy {
            exec: &exec,
            snapshot: &snap,
        };
        train_masked_with_threads(&model, &data.train, env, &cfg, &init, &trainable, threads);
        let direct = exec.cache_stats();
        let via_clone = clone.cache_stats();
        assert_eq!(
            (direct.hits, direct.misses),
            (via_clone.hits, via_clone.misses),
            "clones must report one shared set of counters"
        );
        direct
    };

    let single = run(1);
    assert!(
        single.misses >= 1,
        "a fresh cache must compile at least one structure, saw {single:?}"
    );
    let single_again = run(1);
    assert_eq!(
        (single.hits, single.misses),
        (single_again.hits, single_again.misses),
        "single-thread lookup totals are deterministic"
    );
    // Threaded runs partition probes before grouping, so each partition
    // performs its own per-structure lookup: the aggregate can only grow,
    // and — the satellite fix — none of the fan-out clones' lookups may
    // vanish from the shared totals.
    let fanned = run(4);
    assert!(
        fanned.hits + fanned.misses >= single.hits + single.misses,
        "fan-out clones' lookups must land in the shared totals: {fanned:?} vs {single:?}"
    );
}

/// The positional stream scheme itself: slots/steps/days must map to
/// distinct streams (no accidental collisions among the slots a training
/// step uses), or probes would share shot noise they should not.
#[test]
fn probe_streams_are_distinct_within_a_step() {
    let mut seen = std::collections::HashSet::new();
    for day in [0u64, 1, 77] {
        for step in 0..4u64 {
            for slot in 0..33u64 {
                assert!(
                    seen.insert(parallel::probe_stream(day, step, slot)),
                    "stream collision at day={day} step={step} slot={slot}"
                );
            }
        }
    }
}

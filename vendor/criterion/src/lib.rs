//! Vendored, dependency-free stand-in for the parts of `criterion` that the
//! QuCAD workspace's benches use.
//!
//! The build environment cannot reach crates.io, so this crate implements a
//! small wall-clock harness with the same API shape: [`Criterion`],
//! benchmark groups, [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. There are no
//! statistical reports or HTML output — each benchmark prints its median
//! per-iteration time over a fixed number of samples.
//!
//! Filtering works like upstream's positional filter: `cargo bench -- expr`
//! runs only benchmarks whose `group/function` id contains `expr`.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Target measuring time per sample; iteration counts auto-calibrate to it.
const SAMPLE_TARGET: Duration = Duration::from_millis(60);

/// Samples collected per benchmark (median is reported).
const DEFAULT_SAMPLES: usize = 11;

/// How the input of [`Bencher::iter_batched`] is batched. The stub times
/// each routine call individually, so the variants are equivalent; they
/// exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is cheap to hold many of.
    SmallInput,
    /// Setup output is large; batch less.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Benchmark driver (configuration + result sink).
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free positional arg acts as a substring filter, mirroring
        // `cargo bench -- <filter>`. Harness flags (--bench, --exact,
        // --nocapture) are accepted and ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLES,
        }
    }

    /// Registers a stand-alone benchmark (a group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(id);
        group.bench_function("bench", f);
        group.finish();
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark; `f` drives the [`Bencher`].
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full_id) {
            return self;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&full_id, &mut bencher.samples);
        self
    }

    /// Ends the group (API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    /// Per-iteration times of each collected sample.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over auto-calibrated iteration batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = calibrate(|| {
            std::hint::black_box(routine());
        });
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate with setup included (conservative: fewer iterations),
        // then time only the routine.
        let iters = {
            let mut probe = || {
                let input = setup();
                std::hint::black_box(routine(input));
            };
            calibrate(&mut probe)
        };
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                total += start.elapsed();
            }
            self.samples.push(total / iters);
        }
    }
}

/// Picks an iteration count so one sample takes roughly [`SAMPLE_TARGET`].
fn calibrate<F: FnMut()>(mut f: F) -> u32 {
    let mut iters: u32 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= SAMPLE_TARGET / 4 || iters >= 1 << 20 {
            let per_iter = elapsed / iters;
            let target = (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos().max(1)) as u32;
            return target.clamp(1, 1 << 22);
        }
        iters = iters.saturating_mul(4);
    }
}

fn report(id: &str, samples: &mut [Duration]) {
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "  {id}: median {} (min {}, max {}, {} samples)",
        fmt_duration(median),
        fmt_duration(lo),
        fmt_duration(hi),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into one registry function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the bench `main` for `harness = false` targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

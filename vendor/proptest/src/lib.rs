//! Vendored, dependency-free stand-in for the parts of `proptest` that the
//! QuCAD workspace's property tests use.
//!
//! The build environment cannot reach crates.io, so this crate implements a
//! compatible subset: value-generating [`Strategy`] objects (no shrinking),
//! the [`proptest!`] test macro, `prop_assert*` / `prop_assume!`, and the
//! combinators the tests rely on (`prop_map`, `prop_filter_map`,
//! [`prop_oneof!`], [`collection::vec`], [`Just`], [`any`]).
//!
//! Differences from upstream worth knowing:
//!
//! - **No shrinking.** A failing case reports its inputs via `Debug`-free
//!   message text and the deterministic case index, which is enough to
//!   reproduce (case seeds derive from the index alone).
//! - **Deterministic by default.** Upstream starts from OS entropy;
//!   here every run replays the same case sequence, which suits CI.
//!   Set `PROPTEST_SEED` to explore a different sequence.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with formatted context) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Discards the current case (counted separately from failures) when its
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok($crate::test_runner::CaseOutcome::Discarded);
        }
    };
}

/// Picks uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            while executed < config.cases {
                if attempts >= config.cases.saturating_mul(16).max(1024) {
                    panic!(
                        "proptest '{}': too many discarded cases ({} executed of {})",
                        ::std::stringify!($name), executed, config.cases,
                    );
                }
                let mut rng = $crate::test_runner::case_rng(attempts as u64);
                attempts += 1;
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                let outcome: ::std::result::Result<
                    $crate::test_runner::CaseOutcome,
                    ::std::string::String,
                > = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok($crate::test_runner::CaseOutcome::Ran)
                })();
                match outcome {
                    ::std::result::Result::Ok($crate::test_runner::CaseOutcome::Ran) => {
                        executed += 1;
                    }
                    ::std::result::Result::Ok(
                        $crate::test_runner::CaseOutcome::Discarded,
                    ) => {}
                    ::std::result::Result::Err(message) => {
                        panic!(
                            "proptest '{}' failed at case {} (re-run with this \
                             index via PROPTEST_SEED semantics):\n{}",
                            ::std::stringify!($name),
                            attempts - 1,
                            message,
                        );
                    }
                }
            }
        }
    )*};
}

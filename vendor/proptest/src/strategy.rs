//! Value-generation strategies (no shrinking — see the crate docs).

use rand::rngs::StdRng;
use rand::Rng;

/// Upper bound on resampling attempts inside rejecting combinators
/// (`prop_filter_map`) before the strategy gives up.
const MAX_REJECTS: usize = 10_000;

/// A source of random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking; a strategy
/// simply draws a value from the test RNG.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, resampling whenever `f` returns
    /// `None`. `reason` is reported if the filter rejects too often.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }

    /// Keeps only values for which `pred` holds, resampling otherwise.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }

    /// Type-erases the strategy so heterogeneous strategies with a common
    /// value type can be unioned (see [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected {MAX_REJECTS} candidates: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected {MAX_REJECTS} candidates: {}",
            self.reason
        );
    }
}

/// Always generates clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies, built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Length specification for [`collection::vec`](crate::collection::vec):
/// either an exact length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// See [`collection::vec`](crate::collection::vec).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Canonical strategies for types with a natural "any value" notion.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    /// Finite values spanning several orders of magnitude (no NaN/inf —
    /// the workspace's properties assume finite inputs).
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mantissa: f64 = rng.gen_range(-1.0..1.0);
        let exponent: i32 = rng.gen_range(-8..9);
        mantissa * 10f64.powi(exponent)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

//! Case scheduling for the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of (non-discarded) cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// How one executed case ended (failures travel as `Err(message)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The body ran to completion.
    Ran,
    /// A `prop_assume!` precondition failed; the case does not count.
    Discarded,
}

/// The RNG for one case. Deterministic: derived from the case index and the
/// optional `PROPTEST_SEED` environment variable, so failures replay.
pub fn case_rng(case_index: u64) -> StdRng {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x51C0_FFEE_D00D_2023);
    StdRng::seed_from_u64(base ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

//! Vendored, dependency-free stand-in for the parts of the `rand` crate
//! (0.8 API surface) that the QuCAD workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a compatible subset backed by `xoshiro256**` seeded via SplitMix64. It is
//! deterministic for a given seed, which is all the workspace requires: the
//! simulators and experiment harness always construct RNGs through
//! [`SeedableRng::seed_from_u64`].
//!
//! Implemented surface:
//!
//! - [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`;
//! - [`SeedableRng::seed_from_u64`];
//! - [`rngs::StdRng`];
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The statistical quality matches the upstream algorithms (xoshiro256** is
//! the same family used by `rand`'s `SmallRng`); streams differ from
//! upstream `StdRng` (ChaCha12), which is fine because nothing in the
//! workspace depends on upstream byte-for-byte streams.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below anything the workspace can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty inclusive range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_single(rng)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = Standard::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the half-open contract against round-up at the top end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f32 = Standard::sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly (`f64`/`f32` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: `xoshiro256**` seeded via SplitMix64.
    ///
    /// Deterministic per seed; not cryptographically secure (neither is
    /// anything that consumes it here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let k = rng.gen_range(3usize..9);
            assert!((3..9).contains(&k));
            let t = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&t));
        }
    }

    #[test]
    fn range_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation_and_seeded() {
        let base: Vec<u32> = (0..50).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        a.shuffle(&mut StdRng::seed_from_u64(3));
        b.shuffle(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base);
        assert_ne!(a, base, "50-element shuffle left slice unchanged");
    }

    #[test]
    fn dyn_rng_works_unsized() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen_range(0.0f64..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
